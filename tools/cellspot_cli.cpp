// cellspot — command-line frontend to the Cell-Spotting pipeline.
//
// Subcommands:
//   generate  build a synthetic world and export its datasets as CSV
//             (beacon.csv, demand.csv, rib.csv, asdb.csv, truth.csv)
//   classify  per-block cellular classification from a beacon CSV
//   ases      run the AS pipeline (aggregate + the three filters)
//   report    continent/country summary tables
//
// classify/ases/report never touch the simulator: point them at CSVs
// exported from `generate`, or at files you produced from your own RUM
// logs and RIB dumps (the §2 "easily replicated" workflow).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cellspot/analysis/export.hpp"
#include "cellspot/analysis/pipeline.hpp"
#include "cellspot/asdb/serialization.hpp"
#include "cellspot/cdn/beacon_generator.hpp"
#include "cellspot/cdn/demand_generator.hpp"
#include "cellspot/cdn/event_stream.hpp"
#include "cellspot/core/aggregation.hpp"
#include "cellspot/core/as_pipeline.hpp"
#include "cellspot/core/classifier.hpp"
#include "cellspot/core/validation.hpp"
#include "cellspot/exec/executor.hpp"
#include "cellspot/faultsim/frame_chaos.hpp"
#include "cellspot/obs/metrics.hpp"
#include "cellspot/simnet/world.hpp"
#include "cellspot/snapshot/serde.hpp"
#include "cellspot/snapshot/snapshot.hpp"
#include "cellspot/stream/daemon.hpp"
#include "cellspot/util/csv.hpp"
#include "cellspot/util/ingest.hpp"
#include "cellspot/util/strings.hpp"
#include "cellspot/util/table.hpp"

namespace {

using namespace cellspot;

// Exit codes. Distinct values for strict parse failures vs a blown error
// budget so batch drivers can tell "one bad line" from "half the log is
// garbage" without scraping stderr.
constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitParseFailure = 3;
constexpr int kExitBudgetExceeded = 4;

/// Thrown by Options getters on a malformed value; mapped to kExitUsage.
class OptionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Minimal "--flag value" option parser. A token after a flag is consumed
/// as that flag's value unless it is itself a "--flag"; negative numbers
/// ("--threshold -0.5") therefore parse as values, not flags.
class Options {
 public:
  Options(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
        ok_ = false;
        return;
      }
      arg = arg.substr(2);
      if (i + 1 < argc && !IsFlag(argv[i + 1])) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "";  // boolean flag
      }
    }
  }

  [[nodiscard]] bool ok() const { return ok_; }

  [[nodiscard]] std::optional<std::string> Get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::string GetOr(const std::string& key, std::string fallback) const {
    return Get(key).value_or(std::move(fallback));
  }

  /// Absent keys use the fallback; a present-but-malformed value is an
  /// error (silently substituting the default would mask typos like
  /// "--threshold abc").
  [[nodiscard]] double GetDouble(const std::string& key, double fallback) const {
    const auto v = Get(key);
    if (!v) return fallback;
    const auto parsed = util::ParseDouble(*v);
    if (!parsed) {
      throw OptionError("--" + key + ": expected a number, got '" + *v + "'");
    }
    return *parsed;
  }

  [[nodiscard]] std::uint64_t GetUint(const std::string& key, std::uint64_t fallback) const {
    const auto v = Get(key);
    if (!v) return fallback;
    const auto parsed = util::ParseUint(*v);
    if (!parsed) {
      throw OptionError("--" + key + ": expected a non-negative integer, got '" + *v +
                        "'");
    }
    return *parsed;
  }

  [[nodiscard]] bool Has(const std::string& key) const { return values_.contains(key); }

 private:
  /// "--threshold" is a flag; "-0.5", "-", and "ordinary" are values.
  [[nodiscard]] static bool IsFlag(std::string_view token) {
    return token.rfind("--", 0) == 0;
  }

  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

/// Snapshot-cache directory for simulator-backed commands: --snapshot-dir
/// wins, else CELLSPOT_SNAPSHOT_DIR, else "" (caching off).
std::string SnapshotDir(const Options& opts) {
  return opts.GetOr("snapshot-dir", analysis::SnapshotDirFromEnv());
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cellspot generate --out DIR [--scale S] [--seed N] [--tiny]\n"
               "  cellspot classify --beacons F [--threshold T] [--min-hits N] [--out F]\n"
               "  cellspot ases --beacons F --demand F --rib F --asdb F\n"
               "                [--threshold T] [--min-demand D] [--min-hits N]\n"
               "                [--no-class-rule]\n"
               "  cellspot report --beacons F --demand F --rib F --asdb F\n"
               "  cellspot validate --beacons F --demand F --truth F [--threshold T]\n"
               "  cellspot compress --classified F   (output of `classify`)\n"
               "  cellspot figures --out DIR [--scale S] [--seed N]\n"
               "  cellspot stream [--scale S] [--seed N] [--tiny] [--rounds R]\n"
               "                  [--queue-capacity N] [--backpressure "
               "{block,shed-oldest,shed-newest}]\n"
               "                  [--checkpoint-dir DIR] [--checkpoint-interval T]\n"
               "                  [--staleness-ticks T] [--events-per-tick N]\n"
               "                  [--chaos RATE] [--chaos-seed N] [--verify]\n"
               "\n"
               "global options:\n"
               "  --threads N                        worker threads for parallel stages\n"
               "                                     (default: CELLSPOT_THREADS, else\n"
               "                                     hardware concurrency); results are\n"
               "                                     identical at any thread count\n"
               "  --metrics-out F                    write a cellspot-metrics/1 JSON\n"
               "                                     snapshot at exit (also honours\n"
               "                                     CELLSPOT_METRICS)\n"
               "  --snapshot-dir DIR                 cache generate/figures stage output\n"
               "                                     as binary snapshots in DIR; repeat\n"
               "                                     runs with the same config skip world\n"
               "                                     and dataset generation (also honours\n"
               "                                     CELLSPOT_SNAPSHOT_DIR; corrupt files\n"
               "                                     are quarantined as *.corrupt and\n"
               "                                     regenerated)\n"
               "\n"
               "ingestion options (classify/ases/report/validate/compress):\n"
               "  --on-error {fail,skip,quarantine}  first-fault abort (default),\n"
               "                                     skip-and-account, or skip + write\n"
               "                                     rejected lines verbatim\n"
               "  --max-error-rate R                 lenient-mode budget; rejecting more\n"
               "                                     than this fraction of lines exits %d\n"
               "  --quarantine-file F                where quarantined lines go\n"
               "                                     (default: cellspot.quarantine)\n"
               "\n"
               "exit codes: 0 ok, 1 error, 2 usage, %d parse failure (strict),\n"
               "            %d error budget exceeded\n",
               kExitBudgetExceeded, kExitParseFailure, kExitBudgetExceeded);
  return kExitUsage;
}

/// Per-run ingestion state built from --on-error / --max-error-rate /
/// --quarantine-file. One report (and budget) spans every input file of
/// the command.
struct IngestSetup {
  util::IngestReport report;
  std::ofstream quarantine;
  std::string quarantine_path;

  /// Print the per-category rejection table to stderr (lenient modes).
  void PrintSummary() const {
    if (report.policy() == util::IngestPolicy::kStrict) return;
    std::fprintf(stderr, "%s", report.RenderTable().c_str());
    if (!quarantine_path.empty() && report.lines_rejected() > 0) {
      std::fprintf(stderr, "quarantined %llu lines to %s\n",
                   static_cast<unsigned long long>(report.lines_rejected()),
                   quarantine_path.c_str());
    }
  }
};

// Heap-allocated: the report holds a pointer to the quarantine stream,
// so the setup's address must outlive and never move under it.
std::unique_ptr<IngestSetup> MakeIngestSetup(const Options& opts) {
  const std::string on_error = opts.GetOr("on-error", "fail");
  util::IngestPolicy policy;
  if (on_error == "fail") policy = util::IngestPolicy::kStrict;
  else if (on_error == "skip") policy = util::IngestPolicy::kSkip;
  else if (on_error == "quarantine") policy = util::IngestPolicy::kQuarantine;
  else {
    std::fprintf(stderr, "--on-error: expected fail|skip|quarantine, got '%s'\n",
                 on_error.c_str());
    return nullptr;
  }

  util::IngestLimits limits;
  limits.max_error_rate = opts.GetDouble("max-error-rate", 0.05);
  if (limits.max_error_rate < 0.0 || limits.max_error_rate > 1.0) {
    std::fprintf(stderr, "--max-error-rate: expected a fraction in [0,1]\n");
    return nullptr;
  }

  auto setup = std::make_unique<IngestSetup>();
  std::ostream* quarantine = nullptr;
  if (policy == util::IngestPolicy::kQuarantine) {
    setup->quarantine_path = opts.GetOr("quarantine-file", "cellspot.quarantine");
    setup->quarantine.open(setup->quarantine_path);
    if (!setup->quarantine) {
      std::fprintf(stderr, "cannot write quarantine file %s\n",
                   setup->quarantine_path.c_str());
      return nullptr;
    }
    quarantine = &setup->quarantine;
  }
  setup->report = util::IngestReport(policy, limits, quarantine);
  return setup;
}

template <typename T, typename Loader>
std::optional<T> LoadFile(const Options& opts, const std::string& key, Loader loader) {
  const auto path = opts.Get(key);
  if (!path || path->empty()) {
    std::fprintf(stderr, "missing --%s FILE\n", key.c_str());
    return std::nullopt;
  }
  std::ifstream in(*path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path->c_str());
    return std::nullopt;
  }
  try {
    return loader(in);
  } catch (const util::IngestBudgetError& e) {
    // Prepend the path; main maps the exception type to its exit code.
    throw util::IngestBudgetError(*path + ": " + e.what());
  } catch (const ParseError& e) {
    throw ParseError(*path + ": " + e.what(), e.category());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to load %s: %s\n", path->c_str(), e.what());
    throw;
  }
}

// ---- generate --------------------------------------------------------------

int CmdGenerate(const Options& opts) {
  const auto dir = opts.Get("out");
  if (!dir || dir->empty()) {
    std::fprintf(stderr, "generate: missing --out DIR (must exist)\n");
    return 2;
  }
  simnet::WorldConfig config = opts.Has("tiny")
                                   ? simnet::WorldConfig::Tiny()
                                   : simnet::WorldConfig::Paper(opts.GetDouble("scale", 0.01));
  config.seed = opts.GetUint("seed", config.seed);

  std::printf("generating world (scale %.3g, seed %llu)...\n", config.scale,
              static_cast<unsigned long long>(config.seed));
  analysis::Pipeline pipeline({config, {}, {}, SnapshotDir(opts)});
  pipeline.GenerateDatasets();
  const simnet::World& world = pipeline.experiment().world;
  const auto& beacons = pipeline.experiment().beacons;
  const auto& demand = pipeline.experiment().demand;

  auto save = [&](const std::string& name, auto writer) -> bool {
    const std::string path = *dir + "/" + name;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    writer(out);
    std::printf("  wrote %s\n", path.c_str());
    return true;
  };

  const bool ok =
      save("beacon.csv", [&](std::ostream& out) { beacons.SaveCsv(out); }) &&
      save("demand.csv", [&](std::ostream& out) { demand.SaveCsv(out); }) &&
      save("asdb.csv",
           [&](std::ostream& out) { asdb::SaveAsDatabaseCsv(world.as_db(), out); }) &&
      save("rib.csv",
           [&](std::ostream& out) {
             asdb::SaveRoutingTableCsv(world.rib(), world.as_db(), out);
           }) &&
      save("truth.csv", [&](std::ostream& out) {
        util::CsvWriter writer(out);
        writer.WriteRow({"block", "asn", "cellular"});
        for (const simnet::Subnet& s : world.subnets()) {
          writer.WriteRow({s.block.ToString(), std::to_string(s.asn),
                           s.truth_cellular ? "1" : "0"});
        }
      });
  return ok ? 0 : 1;
}

// ---- classify ----------------------------------------------------------------

int CmdClassify(const Options& opts) {
  auto ingest = MakeIngestSetup(opts);
  if (!ingest) return kExitUsage;
  std::optional<dataset::BeaconDataset> beacons;
  try {
    beacons = LoadFile<dataset::BeaconDataset>(opts, "beacons", [&](std::istream& in) {
      return dataset::BeaconDataset::LoadCsv(in, util::LoadOptions{.report = &ingest->report});
    });
  } catch (...) {
    ingest->PrintSummary();
    throw;
  }
  ingest->PrintSummary();
  if (!beacons) return kExitError;

  core::ClassifierConfig config;
  config.threshold = opts.GetDouble("threshold", 0.5);
  config.min_netinfo_hits = opts.GetUint("min-hits", 1);
  const core::SubnetClassifier classifier(config);
  const auto classified = classifier.Classify(*beacons);

  std::ostream* out = &std::cout;
  std::ofstream file;
  if (const auto path = opts.Get("out"); path && !path->empty()) {
    file.open(*path);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", path->c_str());
      return 1;
    }
    out = &file;
  }
  util::CsvWriter writer(*out);
  writer.WriteRow({"block", "ratio", "netinfo_hits", "cellular"});
  beacons->ForEach([&](const netaddr::Prefix& block, const dataset::BeaconBlockStats& s) {
    if (s.netinfo_hits < config.min_netinfo_hits) return;
    writer.WriteRow({block.ToString(), util::FormatDouble(s.CellularRatio(), 4),
                     std::to_string(s.netinfo_hits),
                     classified.IsCellular(block) ? "1" : "0"});
  });
  std::fprintf(stderr, "classified %zu blocks, %zu cellular (threshold %.2f)\n",
               classified.ratios().size(), classified.cellular().size(),
               config.threshold);
  return 0;
}

// ---- shared loading for ases/report -------------------------------------------

struct PipelineInputs {
  dataset::BeaconDataset beacons;
  dataset::DemandDataset demand;
  asdb::RoutingTable rib;
  asdb::AsDatabase as_db;
};

std::optional<PipelineInputs> LoadInputs(const Options& opts) {
  auto ingest = MakeIngestSetup(opts);
  if (!ingest) return std::nullopt;
  std::optional<PipelineInputs> result;
  try {
    auto beacons =
        LoadFile<dataset::BeaconDataset>(opts, "beacons", [&](std::istream& in) {
          return dataset::BeaconDataset::LoadCsv(in, util::LoadOptions{.report = &ingest->report});
        });
    auto demand =
        LoadFile<dataset::DemandDataset>(opts, "demand", [&](std::istream& in) {
          return dataset::DemandDataset::LoadCsv(in, util::LoadOptions{.report = &ingest->report});
        });
    auto rib = LoadFile<asdb::RoutingTable>(opts, "rib", [&](std::istream& in) {
      return asdb::LoadRoutingTableCsv(in, util::LoadOptions{.report = &ingest->report});
    });
    auto as_db = LoadFile<asdb::AsDatabase>(opts, "asdb", [&](std::istream& in) {
      return asdb::LoadAsDatabaseCsv(in, util::LoadOptions{.report = &ingest->report});
    });
    if (beacons && demand && rib && as_db) {
      result = PipelineInputs{std::move(*beacons), std::move(*demand), std::move(*rib),
                              std::move(*as_db)};
    }
  } catch (...) {
    ingest->PrintSummary();
    throw;
  }
  ingest->PrintSummary();
  return result;
}

// ---- ases ---------------------------------------------------------------------

int CmdAses(const Options& opts) {
  auto inputs = LoadInputs(opts);
  if (!inputs) return 1;

  core::ClassifierConfig classifier_config;
  classifier_config.threshold = opts.GetDouble("threshold", 0.5);
  const auto classified =
      core::SubnetClassifier(classifier_config).Classify(inputs->beacons);
  auto candidates = core::AggregateCandidateAses(inputs->rib, classified,
                                                 inputs->beacons, inputs->demand);

  core::AsFilterConfig filter_config;
  filter_config.min_cell_demand_du = opts.GetDouble("min-demand", 0.1);
  filter_config.min_beacon_hits = opts.GetUint("min-hits", 300);
  filter_config.require_transit_access_class = !opts.Has("no-class-rule");
  const auto outcome =
      core::ApplyAsFilters(std::move(candidates), inputs->as_db, filter_config);

  std::fprintf(stderr,
               "candidates %zu -> removed %zu (demand) + %zu (hits) + %zu (class) "
               "-> kept %zu\n",
               outcome.input_count, outcome.removed_low_demand,
               outcome.removed_low_hits, outcome.removed_class, outcome.kept.size());

  util::CsvWriter writer(std::cout);
  writer.WriteRow({"asn", "name", "country", "cell_blocks", "cell_demand_du", "cfd",
                   "dedicated"});
  for (const core::AsAggregate& as : outcome.kept) {
    const asdb::AsRecord* record = inputs->as_db.Find(as.asn);
    writer.WriteRow({std::to_string(as.asn), record != nullptr ? record->name : "",
                     record != nullptr ? record->country_iso : "",
                     std::to_string(as.cell_blocks_v4 + as.cell_blocks_v6),
                     util::FormatDouble(as.cell_demand_du, 4),
                     util::FormatDouble(as.Cfd(), 4),
                     core::IsDedicated(as) ? "1" : "0"});
  }
  return 0;
}

// ---- report --------------------------------------------------------------------

int CmdReport(const Options& opts) {
  auto inputs = LoadInputs(opts);
  if (!inputs) return 1;

  const auto classified = core::SubnetClassifier().Classify(inputs->beacons);
  auto candidates = core::AggregateCandidateAses(inputs->rib, classified,
                                                 inputs->beacons, inputs->demand);
  const auto outcome = core::ApplyAsFilters(std::move(candidates), inputs->as_db);

  std::map<std::string, std::pair<double, double>> by_country;  // cell, total
  std::set<asdb::AsNumber> kept;
  for (const core::AsAggregate& as : outcome.kept) kept.insert(as.asn);
  inputs->demand.ForEach([&](const netaddr::Prefix& block, double du) {
    const auto origin = inputs->rib.OriginOf(block.address());
    if (!origin) return;
    const asdb::AsRecord* record = inputs->as_db.Find(*origin);
    if (record == nullptr || record->country_iso.empty()) return;
    auto& [cell, total] = by_country[record->country_iso];
    total += du;
    if (kept.contains(*origin) && classified.IsCellular(block)) cell += du;
  });

  util::TextTable t({"Country", "Total DU", "Cellular DU", "Cellular %"});
  double world_cell = 0.0;
  double world_total = 0.0;
  for (const auto& [iso, pair] : by_country) {
    const auto& [cell, total] = pair;
    world_cell += cell;
    world_total += total;
    t.AddRow({iso, util::FormatDouble(total, 1), util::FormatDouble(cell, 1),
              util::FormatPercent(total > 0 ? cell / total : 0.0, 1)});
  }
  std::printf("%s", t.RenderWithTitle("Cellular demand by country").c_str());
  std::printf("\nGlobal: %s cellular of %.0f DU | cellular ASes kept: %zu\n",
              util::FormatPercent(world_total > 0 ? world_cell / world_total : 0.0, 1)
                  .c_str(),
              world_total, outcome.kept.size());
  return 0;
}

// ---- validate -----------------------------------------------------------------

int CmdValidate(const Options& opts) {
  auto ingest = MakeIngestSetup(opts);
  if (!ingest) return kExitUsage;

  // Truth CSV: block,asn,cellular (the format `generate` writes) or a
  // two-column block,cellular list from an operator.
  core::CarrierGroundTruth truth;
  truth.label = "truth";
  std::optional<dataset::BeaconDataset> beacons;
  std::optional<dataset::DemandDataset> demand;
  try {
    beacons = LoadFile<dataset::BeaconDataset>(opts, "beacons", [&](std::istream& in) {
      return dataset::BeaconDataset::LoadCsv(in, util::LoadOptions{.report = &ingest->report});
    });
    demand = LoadFile<dataset::DemandDataset>(opts, "demand", [&](std::istream& in) {
      return dataset::DemandDataset::LoadCsv(in, util::LoadOptions{.report = &ingest->report});
    });
    const auto loaded = LoadFile<bool>(opts, "truth", [&](std::istream& in) {
      bool saw_header = false;
      util::IngestLines(in, ingest->report, [&](std::size_t, std::string_view line) {
        const auto row = util::ParseCsvLine(line);
        if (!saw_header) {
          saw_header = true;
          return;
        }
        if (row.size() < 2) {
          throw ParseError("truth CSV: expected at least 2 columns",
                           ParseErrorCategory::kTruncatedLine);
        }
        const bool cellular = row.back() == "1";
        if (!truth.blocks.Emplace(netaddr::Prefix::Parse(row[0]), cellular)) {
          throw ParseError("truth CSV: duplicate block '" + row[0] + "'",
                           ParseErrorCategory::kDuplicateKey);
        }
      });
      return true;
    });
    if (!loaded) {
      ingest->PrintSummary();
      return kExitError;
    }
  } catch (...) {
    ingest->PrintSummary();
    throw;
  }
  ingest->PrintSummary();
  if (!beacons || !demand) return kExitError;

  core::ClassifierConfig config;
  config.threshold = opts.GetDouble("threshold", 0.5);
  const auto classified = core::SubnetClassifier(config).Classify(*beacons);
  const auto v = core::Validate(truth, classified, *demand);
  std::printf("blocks in truth list: %zu\n", truth.blocks.size());
  std::printf("by CIDR:   TP=%.0f FP=%.0f TN=%.0f FN=%.0f  P=%.3f R=%.3f F1=%.3f\n",
              v.by_cidr.tp(), v.by_cidr.fp(), v.by_cidr.tn(), v.by_cidr.fn(),
              v.by_cidr.Precision(), v.by_cidr.Recall(), v.by_cidr.F1());
  std::printf("by demand: TP=%.2f FP=%.2f TN=%.2f FN=%.2f  P=%.3f R=%.3f F1=%.3f\n",
              v.by_demand.tp(), v.by_demand.fp(), v.by_demand.tn(), v.by_demand.fn(),
              v.by_demand.Precision(), v.by_demand.Recall(), v.by_demand.F1());
  return 0;
}

// ---- compress -------------------------------------------------------------------

int CmdCompress(const Options& opts) {
  auto ingest = MakeIngestSetup(opts);
  if (!ingest) return kExitUsage;
  const auto path = opts.Get("classified");
  if (!path || path->empty()) {
    std::fprintf(stderr, "compress: missing --classified FILE (from `classify`)\n");
    return kExitError;
  }
  std::ifstream in(*path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path->c_str());
    return kExitError;
  }
  std::vector<netaddr::Prefix> blocks;
  try {
    bool saw_header = false;
    util::IngestLines(in, ingest->report, [&](std::size_t, std::string_view line) {
      const auto row = util::ParseCsvLine(line);
      if (!saw_header) {
        saw_header = true;
        return;
      }
      if (row.size() < 4) {
        throw ParseError("classified CSV: expected 4 columns",
                         ParseErrorCategory::kTruncatedLine);
      }
      if (row[3] == "1") blocks.push_back(netaddr::Prefix::Parse(row[0]));
    });
  } catch (...) {
    ingest->PrintSummary();
    throw;
  }
  ingest->PrintSummary();
  const auto compressed = core::CompressPrefixes(blocks);
  for (const netaddr::Prefix& p : compressed) std::printf("%s\n", p.ToString().c_str());
  std::fprintf(stderr, "compressed %zu blocks into %zu prefixes\n", blocks.size(),
               compressed.size());
  return 0;
}

// ---- figures ---------------------------------------------------------------------

int CmdFigures(const Options& opts) {
  const auto dir = opts.Get("out");
  if (!dir || dir->empty()) {
    std::fprintf(stderr, "figures: missing --out DIR (must exist)\n");
    return 2;
  }
  simnet::WorldConfig config = simnet::WorldConfig::Paper(opts.GetDouble("scale", 0.01));
  config.seed = opts.GetUint("seed", config.seed);
  std::printf("running pipeline (scale %.3g)...\n", config.scale);
  analysis::Pipeline pipeline({config, {}, {}, SnapshotDir(opts)});
  pipeline.Run();
  const analysis::Experiment exp = std::move(pipeline).TakeExperiment();
  const dns::DnsSimulator dns_sim(exp.world);
  try {
    for (const std::string& file : analysis::ExportAllFigures(exp, dns_sim, *dir)) {
      std::printf("  wrote %s\n", file.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}

// ---- stream ----------------------------------------------------------------

int CmdStream(const Options& opts) {
  simnet::WorldConfig config = opts.Has("tiny")
                                   ? simnet::WorldConfig::Tiny()
                                   : simnet::WorldConfig::Paper(opts.GetDouble("scale", 0.005));
  config.seed = opts.GetUint("seed", config.seed);

  stream::DaemonConfig daemon_config;
  daemon_config.queue_capacity =
      static_cast<std::size_t>(opts.GetUint("queue-capacity", 1024));
  const std::string policy_name = opts.GetOr("backpressure", "block");
  const auto policy = stream::ParseBackpressurePolicy(policy_name);
  if (!policy) {
    throw OptionError("--backpressure: expected block|shed-oldest|shed-newest, got '" +
                      policy_name + "'");
  }
  daemon_config.backpressure = *policy;
  daemon_config.checkpoint_interval_ticks = opts.GetUint("checkpoint-interval", 64);
  daemon_config.staleness_ticks = opts.GetUint("staleness-ticks", 8);
  daemon_config.max_events_per_tick =
      static_cast<std::size_t>(opts.GetUint("events-per-tick", 4096));

  cdn::EventStreamConfig stream_config;
  stream_config.rounds = static_cast<std::uint32_t>(opts.GetUint("rounds", 4));
  if (stream_config.rounds == 0) {
    throw OptionError("--rounds: expected a positive round count");
  }

  std::printf("building world (scale %.3g, seed %llu)...\n", config.scale,
              static_cast<unsigned long long>(config.seed));
  const simnet::World world = simnet::World::Generate(config);
  const cdn::EventStreamGenerator generator(world, stream_config);
  std::vector<std::string> frames = generator.GenerateFrames();
  const std::size_t final_round_begin = generator.FinalRoundBegin(frames.size());
  // Frames from here on restate exact totals; their count is stable
  // under chaos (the suffix is protected), and the producer delivers
  // them losslessly so every overload burst before them is healed.
  const std::size_t final_count = frames.size() - final_round_begin;

  const double chaos_rate = opts.GetDouble("chaos", 0.0);
  if (chaos_rate < 0.0 || chaos_rate > 1.0) {
    throw OptionError("--chaos: expected a fraction in [0,1]");
  }
  if (chaos_rate > 0.0) {
    faultsim::ChaosMix mix;
    mix.corrupt = mix.duplicate = mix.drop = chaos_rate / 3.0;
    mix.reorder_window = 8;
    faultsim::FrameChaos chaos(mix, opts.GetUint("chaos-seed", 42));
    // The final cumulative round is protected so the run still converges
    // — every injected fault before it must be healed, never fatal.
    frames = chaos.Run(frames, final_round_begin);
    std::printf("chaos: corrupted %llu, duplicated %llu, dropped %llu frames\n",
                static_cast<unsigned long long>(chaos.stats().corrupted),
                static_cast<unsigned long long>(chaos.stats().duplicated),
                static_cast<unsigned long long>(chaos.stats().dropped));
  }

  std::unique_ptr<stream::CheckpointStore> checkpoints;
  const std::string checkpoint_dir = opts.GetOr("checkpoint-dir", "");
  if (!checkpoint_dir.empty()) {
    checkpoints = std::make_unique<stream::CheckpointStore>(
        checkpoint_dir, stream::StreamDaemon::ConfigHash(config, {}));
  }

  stream::StreamDaemon daemon(world, {}, daemon_config, checkpoints.get());
  if (checkpoints && daemon.TryRestore()) {
    std::printf("restored checkpoint at tick %llu\n",
                static_cast<unsigned long long>(daemon.tick()));
  }

  std::printf("streaming %zu frames (queue %zu, backpressure %s)...\n", frames.size(),
              daemon_config.queue_capacity,
              std::string(stream::BackpressurePolicyName(daemon_config.backpressure)).c_str());
  std::thread producer([&] {
    const std::size_t wait_from = frames.size() - final_count;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      if (i < wait_from) {
        daemon.queue().Push(std::move(frames[i]));  // sheddable burst
      } else {
        daemon.queue().PushWait(std::move(frames[i]));  // final round: lossless
      }
    }
    daemon.queue().Close();
  });
  daemon.RunUntilClosed();
  producer.join();

  const stream::DaemonStats& stats = daemon.stats();
  std::printf("ticks %llu | applied %llu, corrupt %llu, duplicate %llu, stale-seq %llu\n",
              static_cast<unsigned long long>(daemon.tick()),
              static_cast<unsigned long long>(stats.applied),
              static_cast<unsigned long long>(stats.corrupt),
              static_cast<unsigned long long>(stats.duplicate),
              static_cast<unsigned long long>(stats.stale_seq));
  std::printf("queue: pushed %llu, shed-oldest %llu, shed-newest %llu\n",
              static_cast<unsigned long long>(daemon.queue().pushed()),
              static_cast<unsigned long long>(daemon.queue().shed_oldest()),
              static_cast<unsigned long long>(daemon.queue().shed_newest()));

  const core::ClassifiedSubnets classified = daemon.ExportClassified();
  std::printf("classified: %zu observed blocks, %zu cellular\n",
              classified.ratios().size(), classified.cellular().size());

  if (opts.Has("verify")) {
    analysis::Pipeline pipeline({config, {}, {}, ""});
    const core::ClassifiedSubnets& batch = pipeline.Classify();
    const bool classified_ok =
        snapshot::EncodeSnapshot(snapshot::EncodeClassified(classified)) ==
        snapshot::EncodeSnapshot(snapshot::EncodeClassified(batch));
    const bool datasets_ok =
        snapshot::EncodeSnapshot(
            snapshot::EncodeDatasets(daemon.ExportBeacons(), daemon.ExportDemand())) ==
        snapshot::EncodeSnapshot(snapshot::EncodeDatasets(
            pipeline.experiment().beacons, pipeline.experiment().demand));
    if (!classified_ok || !datasets_ok) {
      std::fprintf(stderr,
                   "verify: stream state DIVERGED from batch (classified %s, "
                   "datasets %s)\n",
                   classified_ok ? "ok" : "mismatch", datasets_ok ? "ok" : "mismatch");
      return kExitError;
    }
    std::printf("verify: stream state byte-identical to batch pipeline\n");
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Options opts(argc, argv, 2);
  if (!opts.ok()) return Usage();
  try {
    // Global: worker count for every parallel stage (same effect as
    // CELLSPOT_THREADS). Must be applied before the first use of the
    // shared executor.
    const auto threads = opts.GetUint("threads", 0);
    if (opts.Has("threads") && (threads == 0 || threads > 1024)) {
      throw OptionError("--threads: expected a positive thread count, got '" +
                        opts.GetOr("threads", "") + "'");
    }
    exec::Executor::SetDefaultThreadCount(static_cast<unsigned>(threads));
    // Global: dump a cellspot-metrics/1 snapshot at process exit when
    // --metrics-out FILE (or $CELLSPOT_METRICS) names a destination.
    obs::InstallMetricsExporterAtExit(opts.GetOr("metrics-out", ""));
    if (command == "generate") return CmdGenerate(opts);
    if (command == "classify") return CmdClassify(opts);
    if (command == "ases") return CmdAses(opts);
    if (command == "report") return CmdReport(opts);
    if (command == "validate") return CmdValidate(opts);
    if (command == "compress") return CmdCompress(opts);
    if (command == "figures") return CmdFigures(opts);
    if (command == "stream") return CmdStream(opts);
  } catch (const OptionError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return kExitUsage;
  } catch (const util::IngestBudgetError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return kExitBudgetExceeded;
  } catch (const ParseError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return kExitParseFailure;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return kExitError;
  }
  return Usage();
}
