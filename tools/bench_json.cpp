// Validator / appender for the bench regression harness's JSON files.
//
//   bench_json validate-run RUN.json          schema-check one bench run
//   bench_json validate BENCH_<name>.json     schema-check a trajectory
//   bench_json append BENCH_<name>.json RUN.json
//   bench_json gate BENCH_<name>.json RUN.json [TOLERANCE]
//
// `append` folds one cellspot-bench-run/1 record into a
// cellspot-bench/2 trajectory, creating the trajectory file when it does
// not exist yet. Both inputs are validated; a bench-name mismatch or a
// malformed document fails without touching the trajectory file.
//
// `gate` is the perf regression check: it compares RUN's median wall
// time against the best comparable run (same threads/scale/cache
// temperature) already in the trajectory and exits 3 when the fresh
// median exceeds baseline * (1 + TOLERANCE) (default 0.25). A missing
// trajectory file or a run with no comparable baseline passes with a
// note — a brand-new bench or configuration cannot fail its first
// measurement. Bless an intentional regression by re-appending a fresh
// run to the committed trajectory (see README "Perf trajectory").
//
// Used by tools/bench.sh and `tools/ci.sh bench-smoke`. A compiled tool
// (not jq/python) so the schema lives in exactly one place: src/obs.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "cellspot/obs/bench.hpp"
#include "cellspot/obs/json.hpp"
#include "cellspot/util/parse.hpp"

namespace {

using cellspot::obs::JsonValue;

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_json validate-run RUN.json\n"
               "       bench_json validate TRAJECTORY.json\n"
               "       bench_json append TRAJECTORY.json RUN.json\n"
               "       bench_json gate TRAJECTORY.json RUN.json [TOLERANCE]\n");
  return 2;
}

JsonValue ParseFile(const std::string& path) {
  std::string text;
  if (!ReadFile(path, text)) {
    throw std::invalid_argument("cannot read '" + path + "'");
  }
  return JsonValue::Parse(text);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  try {
    if (command == "validate-run" && argc == 3) {
      cellspot::obs::ValidateBenchRun(ParseFile(argv[2]));
      std::printf("%s: valid %s\n", argv[2],
                  std::string(cellspot::obs::kBenchRunSchema).c_str());
      return 0;
    }
    if (command == "validate" && argc == 3) {
      cellspot::obs::ValidateTrajectory(ParseFile(argv[2]));
      std::printf("%s: valid %s\n", argv[2],
                  std::string(cellspot::obs::kBenchTrajectorySchema).c_str());
      return 0;
    }
    if (command == "append" && argc == 4) {
      const JsonValue run = ParseFile(argv[3]);
      JsonValue merged;
      std::string existing_text;
      if (ReadFile(argv[2], existing_text)) {
        const JsonValue existing = JsonValue::Parse(existing_text);
        merged = cellspot::obs::AppendToTrajectory(&existing, run);
      } else {
        merged = cellspot::obs::AppendToTrajectory(nullptr, run);
      }
      std::ofstream out(argv[2], std::ios::trunc);
      out << merged.Dump() << "\n";
      if (!out) {
        std::fprintf(stderr, "bench_json: cannot write '%s'\n", argv[2]);
        return 1;
      }
      std::printf("%s: %zu run(s)\n", argv[2],
                  merged.Find("runs")->as_array().size());
      return 0;
    }
    if (command == "gate" && (argc == 4 || argc == 5)) {
      double tolerance = 0.25;
      if (argc == 5) {
        const auto parsed = cellspot::util::TryParseNumber<double>(argv[4]);
        if (!parsed || *parsed < 0.0) {
          std::fprintf(stderr, "bench_json: TOLERANCE must be a number >= 0, got '%s'\n",
                       argv[4]);
          return 1;
        }
        tolerance = *parsed;
      }
      const JsonValue run = ParseFile(argv[3]);
      cellspot::obs::ValidateBenchRun(run);
      std::string trajectory_text;
      if (!ReadFile(argv[2], trajectory_text)) {
        // First run on a fresh checkout: nothing to regress against yet.
        std::printf("%s: no trajectory at '%s'; gate passes\n",
                    run.Find("bench")->as_string().c_str(), argv[2]);
        return 0;
      }
      const cellspot::obs::BenchGateResult verdict = cellspot::obs::GateBenchRun(
          JsonValue::Parse(trajectory_text), run, tolerance);
      std::printf("%s\n", verdict.note.c_str());
      return verdict.regression ? 3 : 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_json: %s\n", e.what());
    return 1;
  }
  return Usage();
}
