file(REMOVE_RECURSE
  "libcellspot_netinfo.a"
)
