file(REMOVE_RECURSE
  "CMakeFiles/cellspot_netinfo.dir/availability.cpp.o"
  "CMakeFiles/cellspot_netinfo.dir/availability.cpp.o.d"
  "CMakeFiles/cellspot_netinfo.dir/connection.cpp.o"
  "CMakeFiles/cellspot_netinfo.dir/connection.cpp.o.d"
  "CMakeFiles/cellspot_netinfo.dir/noise.cpp.o"
  "CMakeFiles/cellspot_netinfo.dir/noise.cpp.o.d"
  "libcellspot_netinfo.a"
  "libcellspot_netinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellspot_netinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
