
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netinfo/availability.cpp" "src/netinfo/CMakeFiles/cellspot_netinfo.dir/availability.cpp.o" "gcc" "src/netinfo/CMakeFiles/cellspot_netinfo.dir/availability.cpp.o.d"
  "/root/repo/src/netinfo/connection.cpp" "src/netinfo/CMakeFiles/cellspot_netinfo.dir/connection.cpp.o" "gcc" "src/netinfo/CMakeFiles/cellspot_netinfo.dir/connection.cpp.o.d"
  "/root/repo/src/netinfo/noise.cpp" "src/netinfo/CMakeFiles/cellspot_netinfo.dir/noise.cpp.o" "gcc" "src/netinfo/CMakeFiles/cellspot_netinfo.dir/noise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cellspot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
