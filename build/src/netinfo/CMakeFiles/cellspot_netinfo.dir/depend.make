# Empty dependencies file for cellspot_netinfo.
# This may be replaced when dependencies are built.
