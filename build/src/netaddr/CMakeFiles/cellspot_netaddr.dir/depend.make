# Empty dependencies file for cellspot_netaddr.
# This may be replaced when dependencies are built.
