file(REMOVE_RECURSE
  "libcellspot_netaddr.a"
)
