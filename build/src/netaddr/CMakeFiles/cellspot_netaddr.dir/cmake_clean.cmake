file(REMOVE_RECURSE
  "CMakeFiles/cellspot_netaddr.dir/ip_address.cpp.o"
  "CMakeFiles/cellspot_netaddr.dir/ip_address.cpp.o.d"
  "CMakeFiles/cellspot_netaddr.dir/prefix.cpp.o"
  "CMakeFiles/cellspot_netaddr.dir/prefix.cpp.o.d"
  "libcellspot_netaddr.a"
  "libcellspot_netaddr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellspot_netaddr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
