# Empty compiler generated dependencies file for cellspot_simnet.
# This may be replaced when dependencies are built.
