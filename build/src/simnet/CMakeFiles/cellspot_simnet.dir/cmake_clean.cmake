file(REMOVE_RECURSE
  "CMakeFiles/cellspot_simnet.dir/block_allocator.cpp.o"
  "CMakeFiles/cellspot_simnet.dir/block_allocator.cpp.o.d"
  "CMakeFiles/cellspot_simnet.dir/world.cpp.o"
  "CMakeFiles/cellspot_simnet.dir/world.cpp.o.d"
  "CMakeFiles/cellspot_simnet.dir/world_config.cpp.o"
  "CMakeFiles/cellspot_simnet.dir/world_config.cpp.o.d"
  "libcellspot_simnet.a"
  "libcellspot_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellspot_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
