
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/block_allocator.cpp" "src/simnet/CMakeFiles/cellspot_simnet.dir/block_allocator.cpp.o" "gcc" "src/simnet/CMakeFiles/cellspot_simnet.dir/block_allocator.cpp.o.d"
  "/root/repo/src/simnet/world.cpp" "src/simnet/CMakeFiles/cellspot_simnet.dir/world.cpp.o" "gcc" "src/simnet/CMakeFiles/cellspot_simnet.dir/world.cpp.o.d"
  "/root/repo/src/simnet/world_config.cpp" "src/simnet/CMakeFiles/cellspot_simnet.dir/world_config.cpp.o" "gcc" "src/simnet/CMakeFiles/cellspot_simnet.dir/world_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asdb/CMakeFiles/cellspot_asdb.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cellspot_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/netaddr/CMakeFiles/cellspot_netaddr.dir/DependInfo.cmake"
  "/root/repo/build/src/netinfo/CMakeFiles/cellspot_netinfo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cellspot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
