file(REMOVE_RECURSE
  "libcellspot_simnet.a"
)
