file(REMOVE_RECURSE
  "libcellspot_util.a"
)
