file(REMOVE_RECURSE
  "CMakeFiles/cellspot_util.dir/csv.cpp.o"
  "CMakeFiles/cellspot_util.dir/csv.cpp.o.d"
  "CMakeFiles/cellspot_util.dir/date.cpp.o"
  "CMakeFiles/cellspot_util.dir/date.cpp.o.d"
  "CMakeFiles/cellspot_util.dir/metrics.cpp.o"
  "CMakeFiles/cellspot_util.dir/metrics.cpp.o.d"
  "CMakeFiles/cellspot_util.dir/stats.cpp.o"
  "CMakeFiles/cellspot_util.dir/stats.cpp.o.d"
  "CMakeFiles/cellspot_util.dir/strings.cpp.o"
  "CMakeFiles/cellspot_util.dir/strings.cpp.o.d"
  "CMakeFiles/cellspot_util.dir/table.cpp.o"
  "CMakeFiles/cellspot_util.dir/table.cpp.o.d"
  "libcellspot_util.a"
  "libcellspot_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellspot_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
