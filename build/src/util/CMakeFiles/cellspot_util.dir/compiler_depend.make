# Empty compiler generated dependencies file for cellspot_util.
# This may be replaced when dependencies are built.
