# Empty dependencies file for cellspot_geo.
# This may be replaced when dependencies are built.
