file(REMOVE_RECURSE
  "CMakeFiles/cellspot_geo.dir/continent.cpp.o"
  "CMakeFiles/cellspot_geo.dir/continent.cpp.o.d"
  "CMakeFiles/cellspot_geo.dir/country.cpp.o"
  "CMakeFiles/cellspot_geo.dir/country.cpp.o.d"
  "CMakeFiles/cellspot_geo.dir/location.cpp.o"
  "CMakeFiles/cellspot_geo.dir/location.cpp.o.d"
  "libcellspot_geo.a"
  "libcellspot_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellspot_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
