file(REMOVE_RECURSE
  "libcellspot_geo.a"
)
