file(REMOVE_RECURSE
  "libcellspot_asdb.a"
)
