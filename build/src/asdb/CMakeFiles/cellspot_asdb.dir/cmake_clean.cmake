file(REMOVE_RECURSE
  "CMakeFiles/cellspot_asdb.dir/as_database.cpp.o"
  "CMakeFiles/cellspot_asdb.dir/as_database.cpp.o.d"
  "CMakeFiles/cellspot_asdb.dir/serialization.cpp.o"
  "CMakeFiles/cellspot_asdb.dir/serialization.cpp.o.d"
  "libcellspot_asdb.a"
  "libcellspot_asdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellspot_asdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
