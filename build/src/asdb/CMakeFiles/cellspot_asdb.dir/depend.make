# Empty dependencies file for cellspot_asdb.
# This may be replaced when dependencies are built.
