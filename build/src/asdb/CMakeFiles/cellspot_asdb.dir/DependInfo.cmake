
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asdb/as_database.cpp" "src/asdb/CMakeFiles/cellspot_asdb.dir/as_database.cpp.o" "gcc" "src/asdb/CMakeFiles/cellspot_asdb.dir/as_database.cpp.o.d"
  "/root/repo/src/asdb/serialization.cpp" "src/asdb/CMakeFiles/cellspot_asdb.dir/serialization.cpp.o" "gcc" "src/asdb/CMakeFiles/cellspot_asdb.dir/serialization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netaddr/CMakeFiles/cellspot_netaddr.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cellspot_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cellspot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
