file(REMOVE_RECURSE
  "libcellspot_cdn.a"
)
