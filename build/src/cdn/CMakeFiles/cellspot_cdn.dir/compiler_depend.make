# Empty compiler generated dependencies file for cellspot_cdn.
# This may be replaced when dependencies are built.
