file(REMOVE_RECURSE
  "CMakeFiles/cellspot_cdn.dir/beacon_generator.cpp.o"
  "CMakeFiles/cellspot_cdn.dir/beacon_generator.cpp.o.d"
  "CMakeFiles/cellspot_cdn.dir/beacon_log.cpp.o"
  "CMakeFiles/cellspot_cdn.dir/beacon_log.cpp.o.d"
  "CMakeFiles/cellspot_cdn.dir/demand_generator.cpp.o"
  "CMakeFiles/cellspot_cdn.dir/demand_generator.cpp.o.d"
  "CMakeFiles/cellspot_cdn.dir/netinfo_series.cpp.o"
  "CMakeFiles/cellspot_cdn.dir/netinfo_series.cpp.o.d"
  "libcellspot_cdn.a"
  "libcellspot_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellspot_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
