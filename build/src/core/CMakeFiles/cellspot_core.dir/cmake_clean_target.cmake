file(REMOVE_RECURSE
  "libcellspot_core.a"
)
