file(REMOVE_RECURSE
  "CMakeFiles/cellspot_core.dir/aggregation.cpp.o"
  "CMakeFiles/cellspot_core.dir/aggregation.cpp.o.d"
  "CMakeFiles/cellspot_core.dir/as_pipeline.cpp.o"
  "CMakeFiles/cellspot_core.dir/as_pipeline.cpp.o.d"
  "CMakeFiles/cellspot_core.dir/cellular_map.cpp.o"
  "CMakeFiles/cellspot_core.dir/cellular_map.cpp.o.d"
  "CMakeFiles/cellspot_core.dir/classifier.cpp.o"
  "CMakeFiles/cellspot_core.dir/classifier.cpp.o.d"
  "CMakeFiles/cellspot_core.dir/device_baseline.cpp.o"
  "CMakeFiles/cellspot_core.dir/device_baseline.cpp.o.d"
  "CMakeFiles/cellspot_core.dir/validation.cpp.o"
  "CMakeFiles/cellspot_core.dir/validation.cpp.o.d"
  "libcellspot_core.a"
  "libcellspot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellspot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
