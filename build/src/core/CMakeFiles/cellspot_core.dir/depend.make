# Empty dependencies file for cellspot_core.
# This may be replaced when dependencies are built.
