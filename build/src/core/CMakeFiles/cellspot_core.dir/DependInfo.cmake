
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregation.cpp" "src/core/CMakeFiles/cellspot_core.dir/aggregation.cpp.o" "gcc" "src/core/CMakeFiles/cellspot_core.dir/aggregation.cpp.o.d"
  "/root/repo/src/core/as_pipeline.cpp" "src/core/CMakeFiles/cellspot_core.dir/as_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/cellspot_core.dir/as_pipeline.cpp.o.d"
  "/root/repo/src/core/cellular_map.cpp" "src/core/CMakeFiles/cellspot_core.dir/cellular_map.cpp.o" "gcc" "src/core/CMakeFiles/cellspot_core.dir/cellular_map.cpp.o.d"
  "/root/repo/src/core/classifier.cpp" "src/core/CMakeFiles/cellspot_core.dir/classifier.cpp.o" "gcc" "src/core/CMakeFiles/cellspot_core.dir/classifier.cpp.o.d"
  "/root/repo/src/core/device_baseline.cpp" "src/core/CMakeFiles/cellspot_core.dir/device_baseline.cpp.o" "gcc" "src/core/CMakeFiles/cellspot_core.dir/device_baseline.cpp.o.d"
  "/root/repo/src/core/validation.cpp" "src/core/CMakeFiles/cellspot_core.dir/validation.cpp.o" "gcc" "src/core/CMakeFiles/cellspot_core.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataset/CMakeFiles/cellspot_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/cellspot_asdb.dir/DependInfo.cmake"
  "/root/repo/build/src/netaddr/CMakeFiles/cellspot_netaddr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cellspot_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cellspot_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
