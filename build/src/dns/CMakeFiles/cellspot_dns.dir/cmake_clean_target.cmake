file(REMOVE_RECURSE
  "libcellspot_dns.a"
)
