file(REMOVE_RECURSE
  "CMakeFiles/cellspot_dns.dir/distance.cpp.o"
  "CMakeFiles/cellspot_dns.dir/distance.cpp.o.d"
  "CMakeFiles/cellspot_dns.dir/dns_simulator.cpp.o"
  "CMakeFiles/cellspot_dns.dir/dns_simulator.cpp.o.d"
  "CMakeFiles/cellspot_dns.dir/resolver.cpp.o"
  "CMakeFiles/cellspot_dns.dir/resolver.cpp.o.d"
  "libcellspot_dns.a"
  "libcellspot_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellspot_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
