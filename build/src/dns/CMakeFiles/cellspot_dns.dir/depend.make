# Empty dependencies file for cellspot_dns.
# This may be replaced when dependencies are built.
