file(REMOVE_RECURSE
  "libcellspot_evolution.a"
)
