# Empty dependencies file for cellspot_evolution.
# This may be replaced when dependencies are built.
