
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evolution/churn.cpp" "src/evolution/CMakeFiles/cellspot_evolution.dir/churn.cpp.o" "gcc" "src/evolution/CMakeFiles/cellspot_evolution.dir/churn.cpp.o.d"
  "/root/repo/src/evolution/stability.cpp" "src/evolution/CMakeFiles/cellspot_evolution.dir/stability.cpp.o" "gcc" "src/evolution/CMakeFiles/cellspot_evolution.dir/stability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cdn/CMakeFiles/cellspot_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cellspot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/cellspot_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/netinfo/CMakeFiles/cellspot_netinfo.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/cellspot_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/cellspot_asdb.dir/DependInfo.cmake"
  "/root/repo/build/src/netaddr/CMakeFiles/cellspot_netaddr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cellspot_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cellspot_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
