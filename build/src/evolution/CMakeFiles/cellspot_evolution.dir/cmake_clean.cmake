file(REMOVE_RECURSE
  "CMakeFiles/cellspot_evolution.dir/churn.cpp.o"
  "CMakeFiles/cellspot_evolution.dir/churn.cpp.o.d"
  "CMakeFiles/cellspot_evolution.dir/stability.cpp.o"
  "CMakeFiles/cellspot_evolution.dir/stability.cpp.o.d"
  "libcellspot_evolution.a"
  "libcellspot_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellspot_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
