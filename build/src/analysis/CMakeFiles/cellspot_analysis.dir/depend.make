# Empty dependencies file for cellspot_analysis.
# This may be replaced when dependencies are built.
