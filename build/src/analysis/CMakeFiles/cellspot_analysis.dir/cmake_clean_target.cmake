file(REMOVE_RECURSE
  "libcellspot_analysis.a"
)
