file(REMOVE_RECURSE
  "CMakeFiles/cellspot_analysis.dir/experiment.cpp.o"
  "CMakeFiles/cellspot_analysis.dir/experiment.cpp.o.d"
  "CMakeFiles/cellspot_analysis.dir/export.cpp.o"
  "CMakeFiles/cellspot_analysis.dir/export.cpp.o.d"
  "CMakeFiles/cellspot_analysis.dir/reports.cpp.o"
  "CMakeFiles/cellspot_analysis.dir/reports.cpp.o.d"
  "libcellspot_analysis.a"
  "libcellspot_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellspot_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
