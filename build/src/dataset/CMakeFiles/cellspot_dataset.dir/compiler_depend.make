# Empty compiler generated dependencies file for cellspot_dataset.
# This may be replaced when dependencies are built.
