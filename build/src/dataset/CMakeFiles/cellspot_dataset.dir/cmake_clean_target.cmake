file(REMOVE_RECURSE
  "libcellspot_dataset.a"
)
