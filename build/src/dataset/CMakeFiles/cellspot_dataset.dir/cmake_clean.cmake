file(REMOVE_RECURSE
  "CMakeFiles/cellspot_dataset.dir/beacon_dataset.cpp.o"
  "CMakeFiles/cellspot_dataset.dir/beacon_dataset.cpp.o.d"
  "CMakeFiles/cellspot_dataset.dir/demand_dataset.cpp.o"
  "CMakeFiles/cellspot_dataset.dir/demand_dataset.cpp.o.d"
  "libcellspot_dataset.a"
  "libcellspot_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellspot_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
