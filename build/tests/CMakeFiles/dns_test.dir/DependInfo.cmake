
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dns_test.cpp" "tests/CMakeFiles/dns_test.dir/dns_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/cellspot_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/cellspot_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/netinfo/CMakeFiles/cellspot_netinfo.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/cellspot_asdb.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cellspot_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/netaddr/CMakeFiles/cellspot_netaddr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cellspot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
