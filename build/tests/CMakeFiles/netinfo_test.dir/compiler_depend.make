# Empty compiler generated dependencies file for netinfo_test.
# This may be replaced when dependencies are built.
