file(REMOVE_RECURSE
  "CMakeFiles/netinfo_test.dir/netinfo_test.cpp.o"
  "CMakeFiles/netinfo_test.dir/netinfo_test.cpp.o.d"
  "netinfo_test"
  "netinfo_test.pdb"
  "netinfo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netinfo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
