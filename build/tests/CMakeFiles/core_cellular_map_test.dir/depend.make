# Empty dependencies file for core_cellular_map_test.
# This may be replaced when dependencies are built.
