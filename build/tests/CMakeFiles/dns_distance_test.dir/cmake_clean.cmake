file(REMOVE_RECURSE
  "CMakeFiles/dns_distance_test.dir/dns_distance_test.cpp.o"
  "CMakeFiles/dns_distance_test.dir/dns_distance_test.cpp.o.d"
  "dns_distance_test"
  "dns_distance_test.pdb"
  "dns_distance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
