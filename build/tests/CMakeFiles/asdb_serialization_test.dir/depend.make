# Empty dependencies file for asdb_serialization_test.
# This may be replaced when dependencies are built.
