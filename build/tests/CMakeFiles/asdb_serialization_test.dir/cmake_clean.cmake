file(REMOVE_RECURSE
  "CMakeFiles/asdb_serialization_test.dir/asdb_serialization_test.cpp.o"
  "CMakeFiles/asdb_serialization_test.dir/asdb_serialization_test.cpp.o.d"
  "asdb_serialization_test"
  "asdb_serialization_test.pdb"
  "asdb_serialization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asdb_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
