# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for netaddr_ip_address_test.
