file(REMOVE_RECURSE
  "CMakeFiles/netaddr_ip_address_test.dir/netaddr_ip_address_test.cpp.o"
  "CMakeFiles/netaddr_ip_address_test.dir/netaddr_ip_address_test.cpp.o.d"
  "netaddr_ip_address_test"
  "netaddr_ip_address_test.pdb"
  "netaddr_ip_address_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netaddr_ip_address_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
