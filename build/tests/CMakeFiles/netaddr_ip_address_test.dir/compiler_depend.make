# Empty compiler generated dependencies file for netaddr_ip_address_test.
# This may be replaced when dependencies are built.
