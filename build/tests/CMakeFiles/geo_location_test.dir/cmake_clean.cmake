file(REMOVE_RECURSE
  "CMakeFiles/geo_location_test.dir/geo_location_test.cpp.o"
  "CMakeFiles/geo_location_test.dir/geo_location_test.cpp.o.d"
  "geo_location_test"
  "geo_location_test.pdb"
  "geo_location_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_location_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
