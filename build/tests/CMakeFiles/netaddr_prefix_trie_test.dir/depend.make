# Empty dependencies file for netaddr_prefix_trie_test.
# This may be replaced when dependencies are built.
