file(REMOVE_RECURSE
  "CMakeFiles/netaddr_prefix_test.dir/netaddr_prefix_test.cpp.o"
  "CMakeFiles/netaddr_prefix_test.dir/netaddr_prefix_test.cpp.o.d"
  "netaddr_prefix_test"
  "netaddr_prefix_test.pdb"
  "netaddr_prefix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netaddr_prefix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
