# Empty dependencies file for pipeline_roundtrip_test.
# This may be replaced when dependencies are built.
