file(REMOVE_RECURSE
  "CMakeFiles/pipeline_roundtrip_test.dir/pipeline_roundtrip_test.cpp.o"
  "CMakeFiles/pipeline_roundtrip_test.dir/pipeline_roundtrip_test.cpp.o.d"
  "pipeline_roundtrip_test"
  "pipeline_roundtrip_test.pdb"
  "pipeline_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
