# Empty compiler generated dependencies file for simnet_config_test.
# This may be replaced when dependencies are built.
