file(REMOVE_RECURSE
  "CMakeFiles/simnet_config_test.dir/simnet_config_test.cpp.o"
  "CMakeFiles/simnet_config_test.dir/simnet_config_test.cpp.o.d"
  "simnet_config_test"
  "simnet_config_test.pdb"
  "simnet_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simnet_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
