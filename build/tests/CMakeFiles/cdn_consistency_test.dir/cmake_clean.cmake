file(REMOVE_RECURSE
  "CMakeFiles/cdn_consistency_test.dir/cdn_consistency_test.cpp.o"
  "CMakeFiles/cdn_consistency_test.dir/cdn_consistency_test.cpp.o.d"
  "cdn_consistency_test"
  "cdn_consistency_test.pdb"
  "cdn_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
