# Empty dependencies file for cdn_consistency_test.
# This may be replaced when dependencies are built.
