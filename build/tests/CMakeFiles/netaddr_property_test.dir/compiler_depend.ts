# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for netaddr_property_test.
