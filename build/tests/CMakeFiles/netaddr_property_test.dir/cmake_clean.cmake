file(REMOVE_RECURSE
  "CMakeFiles/netaddr_property_test.dir/netaddr_property_test.cpp.o"
  "CMakeFiles/netaddr_property_test.dir/netaddr_property_test.cpp.o.d"
  "netaddr_property_test"
  "netaddr_property_test.pdb"
  "netaddr_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netaddr_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
