# Empty dependencies file for netaddr_property_test.
# This may be replaced when dependencies are built.
