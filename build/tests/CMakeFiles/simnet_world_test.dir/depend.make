# Empty dependencies file for simnet_world_test.
# This may be replaced when dependencies are built.
