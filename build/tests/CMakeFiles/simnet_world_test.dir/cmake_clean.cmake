file(REMOVE_RECURSE
  "CMakeFiles/simnet_world_test.dir/simnet_world_test.cpp.o"
  "CMakeFiles/simnet_world_test.dir/simnet_world_test.cpp.o.d"
  "simnet_world_test"
  "simnet_world_test.pdb"
  "simnet_world_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simnet_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
