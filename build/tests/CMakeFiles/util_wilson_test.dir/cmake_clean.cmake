file(REMOVE_RECURSE
  "CMakeFiles/util_wilson_test.dir/util_wilson_test.cpp.o"
  "CMakeFiles/util_wilson_test.dir/util_wilson_test.cpp.o.d"
  "util_wilson_test"
  "util_wilson_test.pdb"
  "util_wilson_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_wilson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
