# Empty dependencies file for util_wilson_test.
# This may be replaced when dependencies are built.
