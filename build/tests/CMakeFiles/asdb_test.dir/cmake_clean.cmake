file(REMOVE_RECURSE
  "CMakeFiles/asdb_test.dir/asdb_test.cpp.o"
  "CMakeFiles/asdb_test.dir/asdb_test.cpp.o.d"
  "asdb_test"
  "asdb_test.pdb"
  "asdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
