file(REMOVE_RECURSE
  "CMakeFiles/util_property_test.dir/util_property_test.cpp.o"
  "CMakeFiles/util_property_test.dir/util_property_test.cpp.o.d"
  "util_property_test"
  "util_property_test.pdb"
  "util_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
