# Empty dependencies file for util_property_test.
# This may be replaced when dependencies are built.
