# Empty dependencies file for simnet_property_test.
# This may be replaced when dependencies are built.
