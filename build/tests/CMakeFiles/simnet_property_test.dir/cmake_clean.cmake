file(REMOVE_RECURSE
  "CMakeFiles/simnet_property_test.dir/simnet_property_test.cpp.o"
  "CMakeFiles/simnet_property_test.dir/simnet_property_test.cpp.o.d"
  "simnet_property_test"
  "simnet_property_test.pdb"
  "simnet_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simnet_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
