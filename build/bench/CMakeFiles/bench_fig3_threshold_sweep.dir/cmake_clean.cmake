file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_threshold_sweep.dir/bench_fig3_threshold_sweep.cpp.o"
  "CMakeFiles/bench_fig3_threshold_sweep.dir/bench_fig3_threshold_sweep.cpp.o.d"
  "bench_fig3_threshold_sweep"
  "bench_fig3_threshold_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_threshold_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
