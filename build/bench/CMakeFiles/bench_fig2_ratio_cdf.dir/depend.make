# Empty dependencies file for bench_fig2_ratio_cdf.
# This may be replaced when dependencies are built.
