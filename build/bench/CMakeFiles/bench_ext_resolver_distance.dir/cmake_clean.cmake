file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_resolver_distance.dir/bench_ext_resolver_distance.cpp.o"
  "CMakeFiles/bench_ext_resolver_distance.dir/bench_ext_resolver_distance.cpp.o.d"
  "bench_ext_resolver_distance"
  "bench_ext_resolver_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_resolver_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
