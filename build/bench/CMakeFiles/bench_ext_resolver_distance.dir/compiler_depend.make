# Empty compiler generated dependencies file for bench_ext_resolver_distance.
# This may be replaced when dependencies are built.
