file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_as_filtering.dir/bench_table5_as_filtering.cpp.o"
  "CMakeFiles/bench_table5_as_filtering.dir/bench_table5_as_filtering.cpp.o.d"
  "bench_table5_as_filtering"
  "bench_table5_as_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_as_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
