# Empty dependencies file for bench_table5_as_filtering.
# This may be replaced when dependencies are built.
