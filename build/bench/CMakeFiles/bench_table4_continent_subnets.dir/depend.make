# Empty dependencies file for bench_table4_continent_subnets.
# This may be replaced when dependencies are built.
