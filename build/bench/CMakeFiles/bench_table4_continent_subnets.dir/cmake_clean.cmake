file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_continent_subnets.dir/bench_table4_continent_subnets.cpp.o"
  "CMakeFiles/bench_table4_continent_subnets.dir/bench_table4_continent_subnets.cpp.o.d"
  "bench_table4_continent_subnets"
  "bench_table4_continent_subnets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_continent_subnets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
