file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_subnet_concentration.dir/bench_fig8_subnet_concentration.cpp.o"
  "CMakeFiles/bench_fig8_subnet_concentration.dir/bench_fig8_subnet_concentration.cpp.o.d"
  "bench_fig8_subnet_concentration"
  "bench_fig8_subnet_concentration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_subnet_concentration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
