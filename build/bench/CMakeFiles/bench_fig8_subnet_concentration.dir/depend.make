# Empty dependencies file for bench_fig8_subnet_concentration.
# This may be replaced when dependencies are built.
