# Empty compiler generated dependencies file for bench_fig11_country_pdf.
# This may be replaced when dependencies are built.
