file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_device_type.dir/bench_baseline_device_type.cpp.o"
  "CMakeFiles/bench_baseline_device_type.dir/bench_baseline_device_type.cpp.o.d"
  "bench_baseline_device_type"
  "bench_baseline_device_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_device_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
