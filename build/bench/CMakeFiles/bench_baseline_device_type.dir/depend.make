# Empty dependencies file for bench_baseline_device_type.
# This may be replaced when dependencies are built.
