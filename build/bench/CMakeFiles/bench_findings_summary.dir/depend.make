# Empty dependencies file for bench_findings_summary.
# This may be replaced when dependencies are built.
