file(REMOVE_RECURSE
  "CMakeFiles/bench_findings_summary.dir/bench_findings_summary.cpp.o"
  "CMakeFiles/bench_findings_summary.dir/bench_findings_summary.cpp.o.d"
  "bench_findings_summary"
  "bench_findings_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_findings_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
