# Empty compiler generated dependencies file for bench_fig9_resolver_sharing.
# This may be replaced when dependencies are built.
