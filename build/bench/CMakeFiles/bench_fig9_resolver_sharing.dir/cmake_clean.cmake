file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_resolver_sharing.dir/bench_fig9_resolver_sharing.cpp.o"
  "CMakeFiles/bench_fig9_resolver_sharing.dir/bench_fig9_resolver_sharing.cpp.o.d"
  "bench_fig9_resolver_sharing"
  "bench_fig9_resolver_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_resolver_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
