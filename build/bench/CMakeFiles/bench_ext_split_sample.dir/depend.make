# Empty dependencies file for bench_ext_split_sample.
# This may be replaced when dependencies are built.
