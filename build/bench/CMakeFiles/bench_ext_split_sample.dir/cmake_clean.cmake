file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_split_sample.dir/bench_ext_split_sample.cpp.o"
  "CMakeFiles/bench_ext_split_sample.dir/bench_ext_split_sample.cpp.o.d"
  "bench_ext_split_sample"
  "bench_ext_split_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_split_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
