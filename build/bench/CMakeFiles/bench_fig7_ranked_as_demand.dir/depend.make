# Empty dependencies file for bench_fig7_ranked_as_demand.
# This may be replaced when dependencies are built.
