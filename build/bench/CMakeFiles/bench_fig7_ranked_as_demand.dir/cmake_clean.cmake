file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ranked_as_demand.dir/bench_fig7_ranked_as_demand.cpp.o"
  "CMakeFiles/bench_fig7_ranked_as_demand.dir/bench_fig7_ranked_as_demand.cpp.o.d"
  "bench_fig7_ranked_as_demand"
  "bench_fig7_ranked_as_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ranked_as_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
