# Empty dependencies file for bench_table6_continent_ases.
# This may be replaced when dependencies are built.
