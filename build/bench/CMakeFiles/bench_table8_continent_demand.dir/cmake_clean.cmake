file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_continent_demand.dir/bench_table8_continent_demand.cpp.o"
  "CMakeFiles/bench_table8_continent_demand.dir/bench_table8_continent_demand.cpp.o.d"
  "bench_table8_continent_demand"
  "bench_table8_continent_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_continent_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
