# Empty dependencies file for bench_table8_continent_demand.
# This may be replaced when dependencies are built.
