# Empty dependencies file for bench_ablation_wilson.
# This may be replaced when dependencies are built.
