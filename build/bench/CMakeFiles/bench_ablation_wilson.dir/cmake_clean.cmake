file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wilson.dir/bench_ablation_wilson.cpp.o"
  "CMakeFiles/bench_ablation_wilson.dir/bench_ablation_wilson.cpp.o.d"
  "bench_ablation_wilson"
  "bench_ablation_wilson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wilson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
