file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_temporal_stability.dir/bench_ext_temporal_stability.cpp.o"
  "CMakeFiles/bench_ext_temporal_stability.dir/bench_ext_temporal_stability.cpp.o.d"
  "bench_ext_temporal_stability"
  "bench_ext_temporal_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_temporal_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
