file(REMOVE_RECURSE
  "CMakeFiles/bench_ipv6_adoption.dir/bench_ipv6_adoption.cpp.o"
  "CMakeFiles/bench_ipv6_adoption.dir/bench_ipv6_adoption.cpp.o.d"
  "bench_ipv6_adoption"
  "bench_ipv6_adoption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ipv6_adoption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
