# Empty compiler generated dependencies file for bench_ablation_min_hits.
# This may be replaced when dependencies are built.
