file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_min_hits.dir/bench_ablation_min_hits.cpp.o"
  "CMakeFiles/bench_ablation_min_hits.dir/bench_ablation_min_hits.cpp.o.d"
  "bench_ablation_min_hits"
  "bench_ablation_min_hits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_min_hits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
