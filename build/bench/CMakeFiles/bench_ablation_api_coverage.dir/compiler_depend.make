# Empty compiler generated dependencies file for bench_ablation_api_coverage.
# This may be replaced when dependencies are built.
