# Empty dependencies file for bench_fig1_netinfo_adoption.
# This may be replaced when dependencies are built.
