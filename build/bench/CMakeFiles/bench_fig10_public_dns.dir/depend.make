# Empty dependencies file for bench_fig10_public_dns.
# This may be replaced when dependencies are built.
