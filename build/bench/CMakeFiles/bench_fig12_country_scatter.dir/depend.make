# Empty dependencies file for bench_fig12_country_scatter.
# This may be replaced when dependencies are built.
