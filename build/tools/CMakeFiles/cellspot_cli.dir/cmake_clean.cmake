file(REMOVE_RECURSE
  "CMakeFiles/cellspot_cli.dir/cellspot_cli.cpp.o"
  "CMakeFiles/cellspot_cli.dir/cellspot_cli.cpp.o.d"
  "cellspot"
  "cellspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellspot_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
