# Empty compiler generated dependencies file for cellspot_cli.
# This may be replaced when dependencies are built.
