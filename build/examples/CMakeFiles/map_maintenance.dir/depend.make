# Empty dependencies file for map_maintenance.
# This may be replaced when dependencies are built.
