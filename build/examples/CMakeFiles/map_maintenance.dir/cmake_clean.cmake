file(REMOVE_RECURSE
  "CMakeFiles/map_maintenance.dir/map_maintenance.cpp.o"
  "CMakeFiles/map_maintenance.dir/map_maintenance.cpp.o.d"
  "map_maintenance"
  "map_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
