file(REMOVE_RECURSE
  "CMakeFiles/ip_lookup.dir/ip_lookup.cpp.o"
  "CMakeFiles/ip_lookup.dir/ip_lookup.cpp.o.d"
  "ip_lookup"
  "ip_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
