# Empty dependencies file for ip_lookup.
# This may be replaced when dependencies are built.
