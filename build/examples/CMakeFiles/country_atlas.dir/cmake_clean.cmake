file(REMOVE_RECURSE
  "CMakeFiles/country_atlas.dir/country_atlas.cpp.o"
  "CMakeFiles/country_atlas.dir/country_atlas.cpp.o.d"
  "country_atlas"
  "country_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/country_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
