# Empty compiler generated dependencies file for country_atlas.
# This may be replaced when dependencies are built.
