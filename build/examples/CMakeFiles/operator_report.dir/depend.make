# Empty dependencies file for operator_report.
# This may be replaced when dependencies are built.
