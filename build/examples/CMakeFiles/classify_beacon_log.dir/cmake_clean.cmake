file(REMOVE_RECURSE
  "CMakeFiles/classify_beacon_log.dir/classify_beacon_log.cpp.o"
  "CMakeFiles/classify_beacon_log.dir/classify_beacon_log.cpp.o.d"
  "classify_beacon_log"
  "classify_beacon_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_beacon_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
