# Empty compiler generated dependencies file for classify_beacon_log.
# This may be replaced when dependencies are built.
