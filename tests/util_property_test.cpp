// Property tests of the statistics toolkit over random samples,
// parameterised by RNG seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "cellspot/util/rng.hpp"
#include "cellspot/util/stats.hpp"

namespace cellspot::util {
namespace {

class UtilProperty : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<double> RandomSample(Rng& rng, std::size_t n, double scale = 100.0) {
  std::vector<double> out(n);
  for (double& v : out) v = rng.UniformDouble() * scale;
  return out;
}

TEST_P(UtilProperty, RunningStatsMatchesNaive) {
  Rng rng(GetParam());
  const auto sample = RandomSample(rng, 1000);
  RunningStats stats;
  for (double v : sample) stats.Add(v);

  const double mean = std::accumulate(sample.begin(), sample.end(), 0.0) / sample.size();
  double var = 0.0;
  for (double v : sample) var += (v - mean) * (v - mean);
  var /= static_cast<double>(sample.size());

  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.variance(), var, 1e-7);
  EXPECT_DOUBLE_EQ(stats.min(), *std::min_element(sample.begin(), sample.end()));
  EXPECT_DOUBLE_EQ(stats.max(), *std::max_element(sample.begin(), sample.end()));
}

TEST_P(UtilProperty, PercentileIsMonotoneAndBounded) {
  Rng rng(GetParam());
  const auto sample = RandomSample(rng, 200);
  double prev = Percentile(sample, 0.0);
  EXPECT_DOUBLE_EQ(prev, *std::min_element(sample.begin(), sample.end()));
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double v = Percentile(sample, p);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(prev, *std::max_element(sample.begin(), sample.end()));
}

TEST_P(UtilProperty, CdfIsMonotoneReachesOne) {
  Rng rng(GetParam());
  const auto sample = RandomSample(rng, 400);
  const EmpiricalCdf cdf(sample);
  double prev = 0.0;
  for (double x = -10.0; x <= 110.0; x += 2.5) {
    const double f = cdf.At(x);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(cdf.At(1e9), 1.0);
}

TEST_P(UtilProperty, QuantileIsGeneralisedInverse) {
  Rng rng(GetParam());
  const auto sample = RandomSample(rng, 300);
  const EmpiricalCdf cdf(sample);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double x = cdf.Quantile(q);
    // F(x) >= q and F of anything smaller than x is < q.
    EXPECT_GE(cdf.At(x), q - 1e-12);
    EXPECT_LT(cdf.At(x - 1e-9), q);
  }
}

TEST_P(UtilProperty, WeightedCdfMatchesReplication) {
  // Integer weights: the weighted CDF equals the unweighted CDF of the
  // sample with each value replicated weight times.
  Rng rng(GetParam());
  std::vector<double> values;
  std::vector<double> weights;
  std::vector<double> replicated;
  for (int i = 0; i < 60; ++i) {
    const double v = rng.UniformDouble() * 50.0;
    const auto w = rng.UniformInt(1, 4);
    values.push_back(v);
    weights.push_back(static_cast<double>(w));
    for (std::uint64_t k = 0; k < w; ++k) replicated.push_back(v);
  }
  const EmpiricalCdf weighted(values, weights);
  const EmpiricalCdf plain(replicated);
  for (double x = 0.0; x <= 50.0; x += 1.7) {
    EXPECT_NEAR(weighted.At(x), plain.At(x), 1e-12);
  }
}

TEST_P(UtilProperty, GiniBoundsAndScaleInvariance) {
  Rng rng(GetParam());
  const auto sample = RandomSample(rng, 150);
  const double g = GiniCoefficient(sample);
  EXPECT_GE(g, 0.0);
  EXPECT_LT(g, 1.0);
  // Scale invariance.
  std::vector<double> scaled(sample);
  for (double& v : scaled) v *= 7.5;
  EXPECT_NEAR(GiniCoefficient(scaled), g, 1e-9);
}

TEST_P(UtilProperty, TopKShareIsMonotoneInK) {
  Rng rng(GetParam());
  const auto sample = RandomSample(rng, 80);
  double prev = 0.0;
  for (std::size_t k = 1; k <= sample.size(); ++k) {
    const double share = TopKShare(sample, k);
    EXPECT_GE(share, prev);
    EXPECT_LE(share, 1.0 + 1e-12);
    prev = share;
  }
  EXPECT_NEAR(prev, 1.0, 1e-9);
}

TEST_P(UtilProperty, HistogramConservesWeight) {
  Rng rng(GetParam());
  Histogram h(0.0, 100.0, 13);
  double total = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double w = rng.UniformDouble() * 3.0;
    h.Add(rng.UniformDouble() * 130.0 - 15.0, w);  // includes out-of-range
    total += w;
  }
  // Weight is conserved across bins + explicit under/overflow; the edge
  // bins no longer absorb the spill.
  double binned = 0.0;
  double fractions = 0.0;
  double in_range_fractions = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    binned += h.bin_weight(b);
    fractions += h.bin_fraction(b);
    in_range_fractions += h.bin_fraction(b, /*in_range_only=*/true);
  }
  EXPECT_NEAR(binned + h.underflow() + h.overflow(), total, 1e-9);
  EXPECT_NEAR(binned, h.in_range_weight(), 1e-9);
  EXPECT_NEAR(fractions, h.in_range_weight() / total, 1e-9);
  EXPECT_NEAR(in_range_fractions, 1.0, 1e-9);
  EXPECT_GT(h.underflow(), 0.0);
  EXPECT_GT(h.overflow(), 0.0);
}

TEST_P(UtilProperty, ZipfSamplesMatchPmfChiSquared) {
  Rng rng(GetParam());
  const ZipfDistribution zipf(20, 1.1);
  std::vector<int> counts(20, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  // Loose chi-squared-style bound: every bucket within 5 sigma.
  for (std::size_t k = 0; k < counts.size(); ++k) {
    const double expected = zipf.Pmf(k) * n;
    const double sigma = std::sqrt(expected * (1.0 - zipf.Pmf(k)));
    EXPECT_NEAR(counts[k], expected, 5.0 * sigma + 5.0) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UtilProperty,
                         ::testing::Values(3u, 99u, 4242u, 1048576u));

}  // namespace
}  // namespace cellspot::util
