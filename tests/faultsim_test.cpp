#include "cellspot/faultsim/stream_corruptor.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cellspot/util/strings.hpp"

namespace cellspot::faultsim {
namespace {

constexpr std::string_view kLine = "3,198.51.100.7,chrome-mobile,cellular";

std::string MakeStream(std::size_t lines) {
  std::string s;
  for (std::size_t i = 0; i < lines; ++i) {
    s += kLine;
    s += '\n';
  }
  return s;
}

std::string CorruptString(const FaultMix& mix, std::uint64_t seed, const std::string& in,
                          bool preserve = false, CorruptionStats* stats = nullptr) {
  StreamCorruptor corruptor(mix, seed, preserve);
  std::istringstream is(in);
  std::ostringstream os;
  const CorruptionStats pass = corruptor.Corrupt(is, os);
  if (stats != nullptr) *stats = pass;
  return os.str();
}

TEST(StreamCorruptor, ZeroMixIsIdentity) {
  const std::string in = MakeStream(100);
  CorruptionStats stats;
  EXPECT_EQ(CorruptString(FaultMix{}, 42, in, false, &stats), in);
  EXPECT_EQ(stats.lines_in, 100u);
  EXPECT_EQ(stats.lines_out, 100u);
  EXPECT_EQ(stats.total_faults(), 0u);
}

TEST(StreamCorruptor, DeterministicForSeed) {
  const std::string in = MakeStream(500);
  const FaultMix mix = FaultMix::Destructive(0.05);
  EXPECT_EQ(CorruptString(mix, 7, in), CorruptString(mix, 7, in));
  EXPECT_NE(CorruptString(mix, 7, in), CorruptString(mix, 8, in));
}

TEST(StreamCorruptor, RejectsOverfullMix) {
  FaultMix mix;
  mix.truncate = 0.7;
  mix.garble_bytes = 0.6;
  EXPECT_THROW(StreamCorruptor(mix, 1), std::invalid_argument);
  FaultMix negative;
  negative.blank_line = -0.1;
  EXPECT_THROW(StreamCorruptor(negative, 1), std::invalid_argument);
}

TEST(StreamCorruptor, TruncateShortensTheLine) {
  FaultMix mix;
  mix.truncate = 1.0;
  StreamCorruptor corruptor(mix, 3);
  std::vector<std::string> out;
  corruptor.CorruptLine(kLine, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_LT(out[0].size(), kLine.size());
  EXPECT_FALSE(out[0].empty());
  EXPECT_EQ(out[0], kLine.substr(0, out[0].size()));
}

TEST(StreamCorruptor, DropFieldRemovesOneField) {
  FaultMix mix;
  mix.drop_field = 1.0;
  StreamCorruptor corruptor(mix, 3);
  std::vector<std::string> out;
  corruptor.CorruptLine(kLine, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(util::Split(out[0], ',').size(), 3u);
}

TEST(StreamCorruptor, GarblePreservesLengthAndChangesContent) {
  FaultMix mix;
  mix.garble_bytes = 1.0;
  StreamCorruptor corruptor(mix, 3);
  std::vector<std::string> out;
  corruptor.CorruptLine(kLine, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), kLine.size());
  EXPECT_NE(out[0], kLine);
}

TEST(StreamCorruptor, ShuffleRotatesFields) {
  FaultMix mix;
  mix.shuffle_columns = 1.0;
  StreamCorruptor corruptor(mix, 3);
  std::vector<std::string> out;
  corruptor.CorruptLine(kLine, out);
  ASSERT_EQ(out.size(), 1u);
  const auto fields = util::Split(out[0], ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_NE(fields[0], "3");  // a rotation moves every field
}

TEST(StreamCorruptor, DuplicateEmitsTheLineTwice) {
  FaultMix mix;
  mix.duplicate_row = 1.0;
  StreamCorruptor corruptor(mix, 3);
  std::vector<std::string> out;
  corruptor.CorruptLine(kLine, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], kLine);
  EXPECT_EQ(out[1], kLine);
}

TEST(StreamCorruptor, BlankReplacesWithEmptyOrWhitespace) {
  FaultMix mix;
  mix.blank_line = 1.0;
  StreamCorruptor corruptor(mix, 3);
  std::vector<std::string> out;
  corruptor.CorruptLine(kLine, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].empty() || out[0].find_first_not_of(" \t") == std::string::npos);
}

TEST(StreamCorruptor, PreserveOriginalsKeepsTheRecord) {
  FaultMix mix;
  mix.garble_bytes = 1.0;
  StreamCorruptor corruptor(mix, 3, /*preserve_originals=*/true);
  std::vector<std::string> out;
  corruptor.CorruptLine(kLine, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[0], kLine);
  EXPECT_EQ(out[1], kLine);
}

TEST(StreamCorruptor, FaultRateTracksTheMix) {
  const std::string in = MakeStream(10000);
  CorruptionStats stats;
  (void)CorruptString(FaultMix::Destructive(0.01), 11, in, false, &stats);
  EXPECT_EQ(stats.lines_in, 10000u);
  // ~100 expected; a generous window keeps the test deterministic-robust.
  EXPECT_GT(stats.total_faults(), 40u);
  EXPECT_LT(stats.total_faults(), 250u);
}

TEST(StreamCorruptor, ZeroLengthInputIsANoOp) {
  CorruptionStats stats;
  EXPECT_EQ(CorruptString(FaultMix::Destructive(0.5), 9, "", false, &stats), "");
  EXPECT_EQ(stats.lines_in, 0u);
  EXPECT_EQ(stats.lines_out, 0u);
  EXPECT_EQ(stats.total_faults(), 0u);
}

TEST(StreamCorruptor, SingleByteLinesSurviveEveryFault) {
  // Degenerate records — one byte, no delimiter — must never crash any
  // fault path (truncate has nothing to shorten, drop_field no comma...).
  for (const auto set : {&FaultMix::truncate, &FaultMix::garble_bytes,
                         &FaultMix::drop_field, &FaultMix::shuffle_columns,
                         &FaultMix::duplicate_row, &FaultMix::blank_line}) {
    FaultMix mix;
    mix.*set = 1.0;
    StreamCorruptor corruptor(mix, 13);
    std::vector<std::string> out;
    corruptor.CorruptLine("x", out);
    EXPECT_GE(out.size(), 1u);
  }
}

TEST(StreamCorruptor, FullyCorruptedStreamNeverGrowsUnbounded) {
  // Every line faulted: output stays within the duplicate bound (2x)
  // and the stats account for each input line exactly once.
  const std::string in = MakeStream(200);
  CorruptionStats stats;
  (void)CorruptString(FaultMix::Destructive(1.0), 17, in, false, &stats);
  EXPECT_EQ(stats.lines_in, 200u);
  EXPECT_EQ(stats.total_faults(), 200u);
  EXPECT_LE(stats.lines_out, 400u);
}

TEST(StreamCorruptor, StatsAccumulateAcrossPasses) {
  StreamCorruptor corruptor(FaultMix::Destructive(0.5), 5);
  for (int pass = 0; pass < 2; ++pass) {
    std::istringstream is(MakeStream(100));
    std::ostringstream os;
    (void)corruptor.Corrupt(is, os);
  }
  EXPECT_EQ(corruptor.stats().lines_in, 200u);
}

}  // namespace
}  // namespace cellspot::faultsim
