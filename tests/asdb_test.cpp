#include "cellspot/asdb/as_database.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

namespace cellspot::asdb {
namespace {

using netaddr::IpAddress;
using netaddr::Prefix;

AsRecord MakeRecord(AsNumber asn, OperatorKind kind = OperatorKind::kMixed) {
  AsRecord r;
  r.asn = asn;
  r.name = "AS-" + std::to_string(asn);
  r.country_iso = "US";
  r.continent = geo::Continent::kNorthAmerica;
  r.cls = AsClass::kTransitAccess;
  r.kind = kind;
  return r;
}

TEST(AsDatabase, UpsertAndFind) {
  AsDatabase db;
  db.Upsert(MakeRecord(7018));
  ASSERT_NE(db.Find(7018), nullptr);
  EXPECT_EQ(db.Find(7018)->name, "AS-7018");
  EXPECT_EQ(db.Find(1), nullptr);
  EXPECT_EQ(db.size(), 1u);
}

TEST(AsDatabase, UpsertReplacesInPlace) {
  AsDatabase db;
  db.Upsert(MakeRecord(100, OperatorKind::kFixedOnly));
  auto updated = MakeRecord(100, OperatorKind::kMixed);
  updated.name = "renamed";
  db.Upsert(std::move(updated));
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.Find(100)->name, "renamed");
  EXPECT_EQ(db.Find(100)->kind, OperatorKind::kMixed);
}

TEST(AsDatabase, RejectsAsnZero) {
  AsDatabase db;
  EXPECT_THROW(db.Upsert(MakeRecord(0)), std::invalid_argument);
}

TEST(AsDatabase, RecordsPreserveInsertionOrder) {
  AsDatabase db;
  db.Upsert(MakeRecord(3));
  db.Upsert(MakeRecord(1));
  db.Upsert(MakeRecord(2));
  const auto records = db.records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].asn, 3u);
  EXPECT_EQ(records[1].asn, 1u);
  EXPECT_EQ(records[2].asn, 2u);
}

TEST(AsClassNames, Stable) {
  EXPECT_EQ(AsClassName(AsClass::kTransitAccess), "Transit/Access");
  EXPECT_EQ(AsClassName(AsClass::kContent), "Content");
  EXPECT_EQ(OperatorKindName(OperatorKind::kMobileProxy), "MobileProxy");
}

TEST(RoutingTable, OriginLookupLpm) {
  RoutingTable rib;
  rib.Announce(Prefix::Parse("10.0.0.0/8"), 100);
  rib.Announce(Prefix::Parse("10.5.0.0/16"), 200);
  EXPECT_EQ(rib.OriginOf(IpAddress::Parse("10.5.1.1")), 200u);
  EXPECT_EQ(rib.OriginOf(IpAddress::Parse("10.9.1.1")), 100u);
  EXPECT_FALSE(rib.OriginOf(IpAddress::Parse("11.0.0.1")).has_value());
}

TEST(RoutingTable, ExactOrigin) {
  RoutingTable rib;
  rib.Announce(Prefix::Parse("192.0.2.0/24"), 64500);
  EXPECT_EQ(rib.ExactOrigin(Prefix::Parse("192.0.2.0/24")), 64500u);
  EXPECT_FALSE(rib.ExactOrigin(Prefix::Parse("192.0.2.0/25")).has_value());
}

TEST(RoutingTable, ReannouncementMovesPrefix) {
  RoutingTable rib;
  const auto p = Prefix::Parse("198.51.100.0/24");
  rib.Announce(p, 1);
  rib.Announce(p, 2);
  EXPECT_EQ(rib.OriginOf(IpAddress::Parse("198.51.100.9")), 2u);
  EXPECT_TRUE(rib.PrefixesOf(1).empty());
  ASSERT_EQ(rib.PrefixesOf(2).size(), 1u);
  EXPECT_EQ(rib.PrefixesOf(2)[0], p);
  EXPECT_EQ(rib.size(), 1u);
}

TEST(RoutingTable, IdempotentReannouncement) {
  RoutingTable rib;
  const auto p = Prefix::Parse("198.51.100.0/24");
  rib.Announce(p, 7);
  rib.Announce(p, 7);
  EXPECT_EQ(rib.PrefixesOf(7).size(), 1u);
}

TEST(RoutingTable, MixedFamilies) {
  RoutingTable rib;
  rib.Announce(Prefix::Parse("203.0.113.0/24"), 10);
  rib.Announce(Prefix::Parse("2001:db8::/32"), 20);
  EXPECT_EQ(rib.OriginOf(IpAddress::Parse("203.0.113.5")), 10u);
  EXPECT_EQ(rib.OriginOf(IpAddress::Parse("2001:db8:1:2::3")), 20u);
  EXPECT_FALSE(rib.OriginOf(IpAddress::Parse("2001:db9::1")).has_value());
}

TEST(RoutingTable, PrefixesOfReturnsAll) {
  RoutingTable rib;
  rib.Announce(Prefix::Parse("10.0.0.0/24"), 5);
  rib.Announce(Prefix::Parse("10.0.1.0/24"), 5);
  rib.Announce(Prefix::Parse("10.0.2.0/24"), 6);
  auto prefixes = rib.PrefixesOf(5);
  EXPECT_EQ(prefixes.size(), 2u);
  EXPECT_TRUE(std::ranges::find(prefixes, Prefix::Parse("10.0.1.0/24")) != prefixes.end());
}

TEST(RoutingTable, ReannounceChurnDropsEmptiedOrigins) {
  // Moving an origin's last prefix must erase its reverse-index key, so
  // origin_count() stays truthful under heavy announce churn.
  RoutingTable rib;
  const auto p = Prefix::Parse("198.51.100.0/24");
  rib.Announce(p, 1);
  EXPECT_EQ(rib.origin_count(), 1u);
  for (AsNumber asn = 2; asn <= 100; ++asn) {
    rib.Announce(p, asn);
    EXPECT_EQ(rib.origin_count(), 1u) << "churn left an empty origin behind";
  }
  EXPECT_EQ(rib.OriginOf(IpAddress::Parse("198.51.100.1")), 100u);

  // An origin with other prefixes survives a partial withdrawal.
  rib.Announce(Prefix::Parse("10.0.0.0/24"), 100);
  rib.Announce(p, 7);
  EXPECT_EQ(rib.origin_count(), 2u);
  EXPECT_EQ(rib.PrefixesOf(100).size(), 1u);
}

TEST(RoutingTable, FlatEngineInvalidatedByAnnounce) {
  RoutingTable rib;
  rib.Announce(Prefix::Parse("203.0.113.0/24"), 10);
  EXPECT_FALSE(rib.has_flat());
  EXPECT_EQ(*rib.Flat().LongestMatch(IpAddress::Parse("203.0.113.9")), 10u);
  EXPECT_TRUE(rib.has_flat());

  // Mutation drops the compiled engine; lookups stay correct throughout.
  rib.Announce(Prefix::Parse("203.0.113.128/25"), 20);
  EXPECT_FALSE(rib.has_flat());
  EXPECT_EQ(rib.OriginOf(IpAddress::Parse("203.0.113.200")), 20u);
  EXPECT_EQ(*rib.Flat().LongestMatch(IpAddress::Parse("203.0.113.200")), 20u);
  EXPECT_EQ(*rib.Flat().LongestMatch(IpAddress::Parse("203.0.113.9")), 10u);
}

TEST(RoutingTable, BatchLookupMatchesSingleWithZeroForUnrouted) {
  RoutingTable rib;
  rib.Announce(Prefix::Parse("203.0.113.0/24"), 10);
  rib.Announce(Prefix::Parse("2001:db8::/32"), 20);
  const std::vector<netaddr::IpAddress> addrs = {
      IpAddress::Parse("203.0.113.5"), IpAddress::Parse("198.51.100.1"),
      IpAddress::Parse("2001:db8::1"), IpAddress::Parse("2001:db9::1")};
  std::vector<AsNumber> origins(addrs.size());
  rib.OriginOfBatch(addrs, origins);
  EXPECT_EQ(origins, (std::vector<AsNumber>{10, 0, 20, 0}));
}

TEST(RoutingTable, CopyAndMoveKeepLookupsConsistent) {
  RoutingTable rib;
  rib.Announce(Prefix::Parse("203.0.113.0/24"), 10);
  (void)rib.Flat();  // compiled engine present before copy/move

  RoutingTable copy(rib);
  EXPECT_EQ(copy.OriginOf(IpAddress::Parse("203.0.113.5")), 10u);
  copy.Announce(Prefix::Parse("198.51.100.0/24"), 11);
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(rib.size(), 1u);

  RoutingTable moved(std::move(copy));
  EXPECT_EQ(moved.OriginOf(IpAddress::Parse("198.51.100.5")), 11u);
  EXPECT_EQ(moved.OriginOf(IpAddress::Parse("203.0.113.5")), 10u);

  // Moving a table with a compiled engine transfers it intact.
  RoutingTable moved_hot(std::move(rib));
  EXPECT_TRUE(moved_hot.has_flat());
  EXPECT_EQ(moved_hot.OriginOf(IpAddress::Parse("203.0.113.5")), 10u);
}

}  // namespace
}  // namespace cellspot::asdb
