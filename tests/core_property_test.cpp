// Property tests of the classification pipeline: monotonicity in its two
// knobs and conservation laws of the validation stage, exercised on the
// Tiny world's real beacon dataset.
#include <gtest/gtest.h>

#include "cellspot/analysis/experiment.hpp"
#include "cellspot/core/validation.hpp"

namespace cellspot::core {
namespace {

const analysis::Experiment& TinyExp() {
  static const analysis::Experiment exp =
      analysis::RunExperiment(simnet::WorldConfig::Tiny());
  return exp;
}

class ThresholdProperty : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdProperty, RaisingThresholdShrinksTheCellularSet) {
  const double t = GetParam();
  const auto lower = SubnetClassifier({.threshold = t}).Classify(TinyExp().beacons);
  const auto higher =
      SubnetClassifier({.threshold = std::min(1.0, t + 0.2)}).Classify(TinyExp().beacons);
  EXPECT_LE(higher.cellular().size(), lower.cellular().size());
  for (const netaddr::Prefix& block : higher.cellular()) {
    EXPECT_TRUE(lower.IsCellular(block)) << block.ToString();
  }
  // The observed set is threshold-independent.
  EXPECT_EQ(lower.ratios().size(), higher.ratios().size());
}

TEST_P(ThresholdProperty, SweepRecallIsNonIncreasing) {
  const analysis::Experiment& e = TinyExp();
  ASSERT_FALSE(e.world.validation_carriers().empty());
  const auto carrier = e.world.validation_carriers().front();
  const auto truth = analysis::BuildCarrierTruth(e.world, carrier.asn, "p");
  const auto sweep = ThresholdSweep(truth, e.beacons, e.demand, 25);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].recall, sweep[i - 1].recall + 1e-12) << sweep[i].threshold;
  }
  (void)GetParam();
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdProperty,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7));

class MinHitsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinHitsProperty, RaisingEvidenceGateShrinksBothSets) {
  const std::uint64_t gate = GetParam();
  const auto loose =
      SubnetClassifier({.threshold = 0.5, .min_netinfo_hits = gate})
          .Classify(TinyExp().beacons);
  const auto strict =
      SubnetClassifier({.threshold = 0.5, .min_netinfo_hits = gate * 4})
          .Classify(TinyExp().beacons);
  EXPECT_LE(strict.ratios().size(), loose.ratios().size());
  EXPECT_LE(strict.cellular().size(), loose.cellular().size());
  for (const netaddr::Prefix& block : strict.cellular()) {
    EXPECT_TRUE(loose.IsCellular(block));
  }
}

INSTANTIATE_TEST_SUITE_P(Gates, MinHitsProperty, ::testing::Values(1u, 2u, 5u, 10u));

TEST(ValidationConservation, ConfusionPartitionsTruthList) {
  const analysis::Experiment& e = TinyExp();
  for (const auto& carrier : e.world.validation_carriers()) {
    const auto truth = analysis::BuildCarrierTruth(e.world, carrier.asn, "x");
    const auto v = Validate(truth, e.classified, e.demand);
    // Every truth block lands in exactly one confusion quadrant.
    EXPECT_DOUBLE_EQ(v.by_cidr.total(), static_cast<double>(truth.blocks.size()));
    // Positives split into TP+FN; negatives into TN+FP.
    std::size_t positives = 0;
    for (const auto& [block, cellular] : truth.blocks) positives += cellular ? 1 : 0;
    EXPECT_DOUBLE_EQ(v.by_cidr.tp() + v.by_cidr.fn(), static_cast<double>(positives));
  }
}

TEST(ValidationConservation, DemandMatrixBoundedByDatasetTotal) {
  const analysis::Experiment& e = TinyExp();
  for (const auto& carrier : e.world.validation_carriers()) {
    const auto truth = analysis::BuildCarrierTruth(e.world, carrier.asn, "x");
    const auto v = Validate(truth, e.classified, e.demand);
    EXPECT_LE(v.by_demand.total(), dataset::kTotalDemandUnits + 1e-6);
  }
}

TEST(AsFilterProperty, OutcomePartitionsCandidates) {
  const analysis::Experiment& e = TinyExp();
  for (const double min_demand : {0.0, 0.05, 0.1, 1.0, 10.0}) {
    AsFilterConfig config;
    config.min_cell_demand_du = min_demand;
    const auto outcome = ApplyAsFilters(e.candidates, e.world.as_db(), config);
    EXPECT_EQ(outcome.input_count,
              outcome.kept.size() + outcome.removed_low_demand +
                  outcome.removed_low_hits + outcome.removed_class);
  }
}

TEST(AsFilterProperty, StricterDemandFloorKeepsSubset) {
  const analysis::Experiment& e = TinyExp();
  AsFilterConfig loose;
  loose.min_cell_demand_du = 0.05;
  AsFilterConfig strict;
  strict.min_cell_demand_du = 1.0;
  const auto kept_loose = ApplyAsFilters(e.candidates, e.world.as_db(), loose).kept;
  const auto kept_strict = ApplyAsFilters(e.candidates, e.world.as_db(), strict).kept;
  EXPECT_LE(kept_strict.size(), kept_loose.size());
  for (const AsAggregate& as : kept_strict) {
    const bool found = std::any_of(kept_loose.begin(), kept_loose.end(),
                                   [&](const AsAggregate& k) { return k.asn == as.asn; });
    EXPECT_TRUE(found) << as.asn;
  }
}

TEST(AggregationConservation, DemandAttributedOnce) {
  // The sum of per-AS total demand over all candidate ASes cannot exceed
  // the dataset's global total (blocks of non-candidate ASes remain).
  const analysis::Experiment& e = TinyExp();
  double attributed = 0.0;
  for (const AsAggregate& as : e.candidates) attributed += as.total_demand_du;
  EXPECT_LE(attributed, dataset::kTotalDemandUnits + 1e-6);
  // And cellular demand per AS never exceeds its total.
  for (const AsAggregate& as : e.candidates) {
    EXPECT_LE(as.cell_demand_du, as.total_demand_du + 1e-9) << as.asn;
  }
}

}  // namespace
}  // namespace cellspot::core
