#include "cellspot/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cellspot::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.Add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValuesTrackMinMax) {
  RunningStats s;
  s.Add(-3.0);
  s.Add(1.0);
  s.Add(-10.0);
  EXPECT_DOUBLE_EQ(s.min(), -10.0);
  EXPECT_DOUBLE_EQ(s.max(), 1.0);
}

TEST(Percentile, ThrowsOnEmpty) {
  EXPECT_THROW((void)Percentile({}, 50.0), std::invalid_argument);
}

TEST(Percentile, ThrowsOnBadP) {
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)Percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW((void)Percentile(v, 100.5), std::invalid_argument);
}

TEST(Percentile, MedianOfOddSample) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 3.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 10.0);
}

TEST(EmpiricalCdf, EmptyBehaviour) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.At(1.0), 0.0);
  EXPECT_THROW((void)cdf.Quantile(0.5), std::invalid_argument);
}

TEST(EmpiricalCdf, UnweightedSteps) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.At(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.At(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.At(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.At(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.At(100.0), 1.0);
}

TEST(EmpiricalCdf, DuplicateValuesCollapse) {
  EmpiricalCdf cdf({2.0, 2.0, 2.0, 5.0});
  ASSERT_EQ(cdf.points().size(), 2u);
  EXPECT_DOUBLE_EQ(cdf.At(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.At(5.0), 1.0);
}

TEST(EmpiricalCdf, WeightedMatchesManual) {
  EmpiricalCdf cdf({1.0, 2.0}, {1.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.At(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.At(2.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.total_weight(), 4.0);
}

TEST(EmpiricalCdf, WeightedRejectsMismatch) {
  EXPECT_THROW(EmpiricalCdf({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(EmpiricalCdf({1.0}, {-1.0}), std::invalid_argument);
}

TEST(EmpiricalCdf, QuantileInverse) {
  EmpiricalCdf cdf({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.26), 20.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 40.0);
  EXPECT_THROW((void)cdf.Quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)cdf.Quantile(1.5), std::invalid_argument);
}

TEST(EmpiricalCdf, ZeroTotalWeightIsEmpty) {
  EmpiricalCdf cdf({1.0, 2.0}, {0.0, 0.0});
  EXPECT_TRUE(cdf.empty());
}

TEST(EmpiricalCdf, DegenerateDistinguishableFromEmpty) {
  // Both return 0 from At(), but only the zero-weight one is flagged
  // degenerate: its zeros mean "all weight vanished", not "no data".
  const EmpiricalCdf truly_empty;
  EXPECT_TRUE(truly_empty.empty());
  EXPECT_FALSE(truly_empty.degenerate());
  EXPECT_EQ(truly_empty.sample_count(), 0u);

  const EmpiricalCdf zero_weight({1.0, 2.0}, {0.0, 0.0});
  EXPECT_TRUE(zero_weight.empty());
  EXPECT_TRUE(zero_weight.degenerate());
  EXPECT_EQ(zero_weight.sample_count(), 2u);
  EXPECT_DOUBLE_EQ(zero_weight.At(1.5), 0.0);

  const EmpiricalCdf normal({1.0});
  EXPECT_FALSE(normal.degenerate());
  EXPECT_EQ(normal.sample_count(), 1u);
}

TEST(EmpiricalCdf, QuantileRangeIsIntentionallyAsymmetric) {
  // q in (0, 1]: the generalized inverse of a right-continuous step
  // function is defined at q = 1 (largest observation) but not at q = 0.
  EmpiricalCdf cdf({10.0, 20.0});
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 20.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0001), 10.0);
  EXPECT_THROW((void)cdf.Quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)cdf.Quantile(1.0 + 1e-9), std::invalid_argument);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndFractions) {
  Histogram h(0.0, 1.0, 4);
  h.Add(0.1);
  h.Add(0.3);
  h.Add(0.3);
  h.Add(0.9);
  EXPECT_DOUBLE_EQ(h.bin_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(2), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(3), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
}

TEST(Histogram, EdgeBinsNoLongerAbsorbOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-5.0);
  h.Add(5.0);
  // Historically both samples were clamped into the edge bins, silently
  // fattening the distribution tails; now they are tracked explicitly.
  EXPECT_DOUBLE_EQ(h.bin_weight(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(1), 0.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.in_range_weight(), 0.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 2.0);
}

TEST(Histogram, HiBoundaryIsOverflow) {
  // The range is half-open [lo, hi): x == hi is out of range, where the
  // clamping behavior used to drop it into the last bin.
  Histogram h(0.0, 1.0, 4);
  h.Add(1.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(3), 0.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  h.Add(0.999999);
  EXPECT_DOUBLE_EQ(h.bin_weight(3), 1.0);
}

TEST(Histogram, FractionsCountSpillUnlessOptedOut) {
  Histogram h(0.0, 1.0, 2);
  h.Add(0.25);      // bin 0
  h.Add(0.75);      // bin 1
  h.Add(2.0, 2.0);  // overflow, weight 2
  // Default: spill stays in the denominator, so fractions sum to 0.5.
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_fraction(1), 0.25);
  // Opt-in: normalize over in-range weight only.
  EXPECT_DOUBLE_EQ(h.bin_fraction(0, /*in_range_only=*/true), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_fraction(1, /*in_range_only=*/true), 0.5);
}

TEST(Histogram, OutOfRangeOnlyFractionsAreZero) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-1.0);
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_fraction(0, /*in_range_only=*/true), 0.0);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 2.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 1.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 2.0);
  EXPECT_THROW((void)h.bin_lo(4), std::out_of_range);
}

TEST(Gini, UniformIsZero) {
  const std::vector<double> v{5.0, 5.0, 5.0, 5.0};
  EXPECT_NEAR(GiniCoefficient(v), 0.0, 1e-12);
}

TEST(Gini, FullConcentrationApproachesOne) {
  std::vector<double> v(100, 0.0);
  v[0] = 1.0;
  EXPECT_NEAR(GiniCoefficient(v), 0.99, 1e-9);
}

TEST(Gini, EmptyAndZeroTotals) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({}), 0.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(GiniCoefficient(zeros), 0.0);
}

TEST(Gini, ThrowsOnNegativeValues) {
  // A negative value used to produce Gini > 1 (out of the index's range)
  // instead of an error.
  const std::vector<double> v{-10.0, 1.0, 1.0};
  EXPECT_THROW((void)GiniCoefficient(v), std::invalid_argument);
}

TEST(TopKShare, ThrowsOnNegativeValues) {
  const std::vector<double> v{5.0, -1.0};
  EXPECT_THROW((void)TopKShare(v, 1), std::invalid_argument);
  // Even when k = 0 / the sample would short-circuit, negatives are
  // rejected first so the contract does not depend on k.
  EXPECT_THROW((void)TopKShare(v, 0), std::invalid_argument);
}

TEST(TopKShare, BasicShares) {
  const std::vector<double> v{10.0, 30.0, 20.0, 40.0};
  EXPECT_DOUBLE_EQ(TopKShare(v, 1), 0.4);
  EXPECT_DOUBLE_EQ(TopKShare(v, 2), 0.7);
  EXPECT_DOUBLE_EQ(TopKShare(v, 10), 1.0);
  EXPECT_DOUBLE_EQ(TopKShare(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(TopKShare({}, 3), 0.0);
}

}  // namespace
}  // namespace cellspot::util
