// Drives the cellspot-audit binary over tests/lint_fixtures/: a dirty
// tree with one deliberate violation per rule (plus the waiver
// accept/reject pair) and a clean tree holding each rule's negative
// case — including the lexer edge cases (comment/string splices, raw
// string prefixes, digit separators) whose regression would surface as
// bogus findings. The JSON findings document is parsed back with
// obs::JsonValue to pin the cellspot-audit/1 schema. The layering pass
// and the baseline gate have their own fixture trees in audit_test.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cellspot/obs/json.hpp"

namespace {

using cellspot::obs::JsonValue;

#ifndef CELLSPOT_LINT_BIN
#error "CELLSPOT_LINT_BIN must point at the cellspot-audit binary"
#endif
#ifndef CELLSPOT_LINT_FIXTURES
#error "CELLSPOT_LINT_FIXTURES must point at tests/lint_fixtures"
#endif

struct LintRun {
  int exit_code = -1;
  JsonValue doc;
};

/// Run cellspot-audit over `root`, returning the exit code and the
/// parsed --json document. `extra` is spliced into the command line.
LintRun RunLint(const std::string& root, const std::string& extra = "") {
  const std::string json_path =
      testing::TempDir() + "/lint_findings_" +
      std::to_string(::getpid()) + ".json";
  const std::string cmd = std::string(CELLSPOT_LINT_BIN) + " --quiet --root '" +
                          root + "' " + extra + " --json '" + json_path + "'";
  const int status = std::system(cmd.c_str());
  LintRun run;
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream in(json_path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "lint did not write " << json_path;
  std::ostringstream buf;
  buf << in.rdbuf();
  run.doc = JsonValue::Parse(buf.str());
  std::remove(json_path.c_str());
  return run;
}

std::string Fixture(const std::string& sub) {
  return std::string(CELLSPOT_LINT_FIXTURES) + "/" + sub;
}

/// (rule, file) pairs from the findings array, with multiplicity.
std::map<std::pair<std::string, std::string>, int> FindingIndex(
    const JsonValue& doc) {
  std::map<std::pair<std::string, std::string>, int> index;
  for (const JsonValue& f : doc.Find("findings")->as_array()) {
    ++index[{f.Find("rule")->as_string(), f.Find("file")->as_string()}];
  }
  return index;
}

TEST(LintFixtures, DirtyTreeReportsEveryRule) {
  const LintRun run = RunLint(Fixture("dirty"));
  EXPECT_EQ(run.exit_code, 1);
  ASSERT_TRUE(run.doc.is_object());
  EXPECT_EQ(run.doc.Find("schema")->as_string(), "cellspot-audit/1");
  EXPECT_FALSE(run.doc.Find("clean")->as_bool());

  const auto index = FindingIndex(run.doc);
  EXPECT_EQ(index.at({"L001", "src/core/parse_bad.cpp"}), 1);
  EXPECT_EQ(index.at({"L002", "src/analysis/report_bad.cpp"}), 2)
      << "include line and declaration should both fire";
  EXPECT_EQ(index.at({"L003", "src/core/clock_bad.cpp"}), 2)
      << "rand() and ::now() should both fire";
  EXPECT_EQ(index.at({"L004", "src/core/print_bad.cpp"}), 1);
  EXPECT_EQ(index.at({"L005", "src/core/include/unguarded.hpp"}), 1);
  EXPECT_EQ(index.at({"L008", "src/core/lock_bad.cpp"}), 2)
      << "ParallelFor under a lock_guard and .Lookup under a scoped_lock";
  EXPECT_EQ(index.at({"L009", "src/core/thread_bad.cpp"}), 3)
      << "std::thread, .detach() and std::async should each fire";
  EXPECT_EQ(index.at({"L010", "src/core/swallow_bad.cpp"}), 1);
  EXPECT_EQ(index.at({"L011", "src/core/stale_waiver.cpp"}), 1)
      << "a waiver that suppresses nothing is itself a finding";
}

TEST(LintFixtures, CleanTreeIsClean) {
  const LintRun run = RunLint(Fixture("clean"));
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_TRUE(run.doc.Find("clean")->as_bool());
  EXPECT_TRUE(run.doc.Find("findings")->as_array().empty());
  // The negative fixtures (including the lexer edge cases) must pass
  // on classification alone, with no waivers.
  EXPECT_GE(run.doc.Find("files_scanned")->as_number(), 9.0);
  EXPECT_TRUE(run.doc.Find("waivers")->as_array().empty());
}

TEST(LintFixtures, WaiverWithReasonSuppressesAndIsMarkedUsed) {
  const LintRun run = RunLint(Fixture("dirty"));
  const auto index = FindingIndex(run.doc);
  EXPECT_EQ(index.count({"L003", "src/core/waived.cpp"}), 0U)
      << "a standalone allow(L003) pragma must cover the next code line";

  bool found = false;
  for (const JsonValue& w : run.doc.Find("waivers")->as_array()) {
    if (w.Find("file")->as_string() != "src/core/waived.cpp") continue;
    found = true;
    EXPECT_EQ(w.Find("rule")->as_string(), "L003");
    EXPECT_TRUE(w.Find("used")->as_bool());
    EXPECT_FALSE(w.Find("reason")->as_string().empty());
    EXPECT_GT(w.Find("target_line")->as_number(), w.Find("line")->as_number());
  }
  EXPECT_TRUE(found) << "the used waiver must appear in the waivers array";
}

TEST(LintFixtures, WaiverWithoutReasonIsRejected) {
  const LintRun run = RunLint(Fixture("dirty"));
  const auto index = FindingIndex(run.doc);
  // allow(L003) with no reason and allow(banana) both degrade to L006...
  EXPECT_EQ(index.at({"L006", "src/core/waiver_bad.cpp"}), 2);
  // ...and the violation the first one hoped to cover is still reported.
  EXPECT_EQ(index.at({"L003", "src/core/waiver_bad.cpp"}), 1);
}

TEST(LintFixtures, JsonDocumentRoundTrips) {
  const LintRun run = RunLint(Fixture("dirty"));
  const JsonValue reparsed = JsonValue::Parse(run.doc.Dump());
  EXPECT_EQ(reparsed, run.doc);

  // Every finding carries the full schema; spot-check one record.
  const auto& findings = run.doc.Find("findings")->as_array();
  ASSERT_FALSE(findings.empty());
  for (const JsonValue& f : findings) {
    for (const char* key : {"rule", "file", "message", "snippet"}) {
      ASSERT_NE(f.Find(key), nullptr) << key;
      EXPECT_TRUE(f.Find(key)->is_string()) << key;
    }
    for (const char* key : {"line", "column"}) {
      ASSERT_NE(f.Find(key), nullptr) << key;
      EXPECT_TRUE(f.Find(key)->is_number()) << key;
    }
  }
}

TEST(LintFixtures, RealTreeIsCleanWithExplainedWaivers) {
  // The repo root is two levels above the fixture dir; auditing the
  // real tree against its committed baseline must stay green, and every
  // waiver in it must carry a reason and actually suppress something
  // (no stale pragmas — the audit would flag them as L011 anyway).
  const LintRun run = RunLint(
      Fixture("../.."),
      "--baseline '" + Fixture("../../tools/lint/baseline.json") + "'");
  EXPECT_EQ(run.exit_code, 0) << run.doc.Dump();
  EXPECT_TRUE(run.doc.Find("clean")->as_bool());
  for (const JsonValue& w : run.doc.Find("waivers")->as_array()) {
    EXPECT_FALSE(w.Find("reason")->as_string().empty())
        << w.Find("file")->as_string() << ":" << w.Find("line")->as_number();
    EXPECT_TRUE(w.Find("used")->as_bool())
        << "stale waiver at " << w.Find("file")->as_string() << ":"
        << w.Find("line")->as_number();
  }
}

}  // namespace
