// TraceSpan contract tests: per-thread nesting produces '/'-joined
// aggregate paths, worker threads do not inherit the caller's stack, and
// running the analysis pipeline emits one span aggregate per stage (plus
// nested exec.batch spans) into the global registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "cellspot/analysis/pipeline.hpp"
#include "cellspot/obs/metrics.hpp"
#include "cellspot/obs/trace.hpp"
#include "cellspot/simnet/world.hpp"

namespace cellspot {
namespace {

using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::TraceSpan;

const MetricsSnapshot::SpanRow* FindSpan(const MetricsSnapshot& snap,
                                         std::string_view path) {
  const auto it = std::find_if(snap.spans.begin(), snap.spans.end(),
                               [&](const auto& row) { return row.path == path; });
  return it == snap.spans.end() ? nullptr : &*it;
}

TEST(TraceSpan, NestingJoinsPathsWithSlash) {
  MetricsRegistry reg;
  {
    TraceSpan outer("outer", reg);
    EXPECT_EQ(outer.path(), "outer");
    EXPECT_EQ(outer.depth(), 0);
    EXPECT_EQ(TraceSpan::Current(), &outer);
    {
      TraceSpan inner("inner", reg);
      EXPECT_EQ(inner.path(), "outer/inner");
      EXPECT_EQ(inner.depth(), 1);
      inner.set_items(5);
      EXPECT_EQ(TraceSpan::Current(), &inner);
    }
    EXPECT_EQ(TraceSpan::Current(), &outer);
    outer.AddItems(2);
    outer.AddItems(3);
  }
  EXPECT_EQ(TraceSpan::Current(), nullptr);

  const MetricsSnapshot snap = reg.Snapshot();
  const auto* outer_row = FindSpan(snap, "outer");
  const auto* inner_row = FindSpan(snap, "outer/inner");
  ASSERT_NE(outer_row, nullptr);
  ASSERT_NE(inner_row, nullptr);
  EXPECT_EQ(outer_row->count, 1u);
  EXPECT_EQ(outer_row->depth, 0);
  EXPECT_EQ(outer_row->items, 5u);
  EXPECT_EQ(inner_row->count, 1u);
  EXPECT_EQ(inner_row->depth, 1);
  EXPECT_EQ(inner_row->items, 5u);
  // The parent's wall time covers the child's.
  EXPECT_GE(outer_row->total_ms, inner_row->total_ms);
}

TEST(TraceSpan, RepeatedOccurrencesFoldIntoOneRow) {
  MetricsRegistry reg;
  for (int i = 0; i < 3; ++i) {
    TraceSpan span("repeat", reg);
    span.set_items(10);
  }
  const MetricsSnapshot snap = reg.Snapshot();
  const auto* row = FindSpan(snap, "repeat");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, 3u);
  EXPECT_EQ(row->items, 30u);
  EXPECT_GE(row->max_ms, row->min_ms);
  EXPECT_GE(row->total_ms, row->max_ms);
}

TEST(TraceSpan, OtherThreadsDoNotInheritTheCallersStack) {
  MetricsRegistry reg;
  TraceSpan outer("outer", reg);
  std::string other_path;
  std::thread worker([&] {
    EXPECT_EQ(TraceSpan::Current(), nullptr);
    TraceSpan mine("worker", reg);
    other_path = mine.path();
  });
  worker.join();
  EXPECT_EQ(other_path, "worker");  // not "outer/worker"
}

TEST(TraceSpan, ElapsedIsMonotonic) {
  TraceSpan span("clock");
  const double a = span.elapsed_ms();
  const double b = span.elapsed_ms();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(PipelineTracing, EveryStageEmitsASpanAggregate) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.ResetForTest();

  analysis::Pipeline::Config config;
  config.world = simnet::WorldConfig::Tiny();
  analysis::Pipeline pipeline(config);
  (void)pipeline.Run();

  const MetricsSnapshot snap = reg.Snapshot();
  // compile_lpm is span-only: the five-entry timings() list is pinned
  // by pipeline_determinism_test, so the LPM compile traces without
  // adding a StageTiming.
  for (const char* stage : {"pipeline.build_world", "pipeline.compile_lpm",
                            "pipeline.generate_datasets", "pipeline.classify",
                            "pipeline.aggregate", "pipeline.filter"}) {
    const auto* row = FindSpan(snap, stage);
    ASSERT_NE(row, nullptr) << stage;
    EXPECT_EQ(row->count, 1u) << stage;
    EXPECT_EQ(row->depth, 0) << stage;
  }
  // Stage spans mirror the pipeline's own timing records.
  ASSERT_EQ(pipeline.timings().size(), 5u);
  for (const analysis::StageTiming& timing : pipeline.timings()) {
    const auto* row = FindSpan(snap, "pipeline." + timing.stage);
    ASSERT_NE(row, nullptr) << timing.stage;
    EXPECT_EQ(row->items, static_cast<std::uint64_t>(timing.items)) << timing.stage;
  }
  // Executor batches launched inside a stage nest under it.
  const bool has_nested_batch =
      std::any_of(snap.spans.begin(), snap.spans.end(), [](const auto& row) {
        return row.depth == 1 && row.path.ends_with("/exec.batch");
      });
  EXPECT_TRUE(has_nested_batch);
  reg.ResetForTest();
}

}  // namespace
}  // namespace cellspot
