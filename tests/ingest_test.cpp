// Fault-tolerant ingestion: the ingest report/policy machinery, lenient
// loader behavior, and the end-to-end guarantee that a corrupted beacon
// log ingested leniently reproduces the clean classification.
#include "cellspot/util/ingest.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cellspot/asdb/serialization.hpp"
#include "cellspot/cdn/beacon_generator.hpp"
#include "cellspot/cdn/beacon_log.hpp"
#include "cellspot/core/classifier.hpp"
#include "cellspot/dataset/beacon_dataset.hpp"
#include "cellspot/dataset/demand_dataset.hpp"
#include "cellspot/faultsim/stream_corruptor.hpp"
#include "cellspot/simnet/world.hpp"
#include "cellspot/util/csv.hpp"

namespace cellspot {
namespace {

using util::IngestLimits;
using util::IngestPolicy;
using util::IngestReport;

// ---- ParseError context ----------------------------------------------------

TEST(ParseError, CarriesCategoryAndLineNumber) {
  const ParseError plain("bad things");
  EXPECT_EQ(plain.category(), ParseErrorCategory::kOther);
  EXPECT_FALSE(plain.line_number().has_value());

  const ParseError categorized("bad asn", ParseErrorCategory::kBadNumber);
  EXPECT_EQ(categorized.category(), ParseErrorCategory::kBadNumber);

  const ParseError located("bad asn", ParseErrorCategory::kBadNumber, 42);
  ASSERT_TRUE(located.line_number().has_value());
  EXPECT_EQ(*located.line_number(), 42u);
  EXPECT_STREQ(located.what(), "line 42: bad asn");

  const ParseError legacy("bad row", 7);
  EXPECT_EQ(*legacy.line_number(), 7u);
  EXPECT_EQ(legacy.category(), ParseErrorCategory::kOther);
}

// ---- IngestReport ----------------------------------------------------------

TEST(IngestReport, StrictRethrowsWithLineNumber) {
  IngestReport report;  // default strict
  try {
    report.RecordError(ParseError("bad day 'x'", ParseErrorCategory::kBadNumber),
                       "x,1.2.3.4,chrome-mobile,-", 13);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.category(), ParseErrorCategory::kBadNumber);
    ASSERT_TRUE(e.line_number().has_value());
    EXPECT_EQ(*e.line_number(), 13u);
    EXPECT_TRUE(std::string(e.what()).starts_with("line 13:"));
  }
}

TEST(IngestReport, SkipCountsPerCategoryAndKeepsExemplars) {
  IngestReport report(IngestPolicy::kSkip, IngestLimits{.max_error_rate = 1.0,
                                                        .max_exemplars = 2});
  for (std::size_t i = 1; i <= 5; ++i) {
    report.RecordError(ParseError("bad", ParseErrorCategory::kBadAddress),
                       "line-" + std::to_string(i), i);
  }
  report.RecordError(ParseError("short", ParseErrorCategory::kTruncatedLine), "x", 6);
  report.RecordOk();

  EXPECT_EQ(report.lines_rejected(), 6u);
  EXPECT_EQ(report.lines_ok(), 1u);
  EXPECT_EQ(report.count(ParseErrorCategory::kBadAddress), 5u);
  EXPECT_EQ(report.count(ParseErrorCategory::kTruncatedLine), 1u);
  ASSERT_EQ(report.exemplars(ParseErrorCategory::kBadAddress).size(), 2u);
  EXPECT_EQ(report.exemplars(ParseErrorCategory::kBadAddress)[0].line, "line-1");
  EXPECT_EQ(report.exemplars(ParseErrorCategory::kBadAddress)[0].line_no, 1u);
  EXPECT_NEAR(report.error_rate(), 6.0 / 7.0, 1e-12);
}

TEST(IngestReport, BudgetEnforcedEvenWhenLenient) {
  IngestReport report(IngestPolicy::kSkip, IngestLimits{.max_error_rate = 0.5});
  report.RecordOk();
  report.RecordError(ParseError("bad"), "raw", 2);
  EXPECT_NO_THROW(report.CheckBudget());  // 1/2 == budget, not above it
  report.RecordError(ParseError("bad"), "raw", 3);
  EXPECT_THROW(report.CheckBudget(), util::IngestBudgetError);
}

TEST(IngestReport, QuarantineWritesRejectedLinesVerbatim) {
  std::ostringstream quarantine;
  IngestReport report(IngestPolicy::kQuarantine, {}, &quarantine);
  report.RecordError(ParseError("bad"), "first,raw,line", 1);
  report.RecordError(ParseError("bad"), "second \"raw\" line", 9);
  EXPECT_EQ(quarantine.str(), "first,raw,line\nsecond \"raw\" line\n");
}

TEST(IngestReport, RenderTableListsCategoriesAndTotals) {
  IngestReport report(IngestPolicy::kSkip, {});
  report.RecordOk();
  report.RecordError(ParseError("bad ip", ParseErrorCategory::kBadAddress), "raw", 3);
  const std::string table = report.RenderTable();
  EXPECT_NE(table.find("bad-address"), std::string::npos);
  EXPECT_NE(table.find("line 3"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
}

TEST(IngestLines, SkipsBlankLinesAndRoutesErrors) {
  std::istringstream in("good\n\n  \nboom\ngood\n");
  IngestReport report(IngestPolicy::kSkip, {});
  std::vector<std::size_t> good_lines;
  util::IngestLines(in, report, [&](std::size_t line_no, std::string_view line) {
    if (line != "good") throw ParseError("not good");
    good_lines.push_back(line_no);
  });
  EXPECT_EQ(report.lines_ok(), 2u);
  EXPECT_EQ(report.lines_rejected(), 2u);  // "  " and "boom"
  EXPECT_EQ(good_lines, (std::vector<std::size_t>{1, 5}));
}

// ---- lenient loaders -------------------------------------------------------

TEST(ReadCsv, LenientSkipsUnterminatedQuote) {
  std::istringstream in("a,b\n\"oops\nc,d\n");
  IngestReport report(IngestPolicy::kSkip, {});
  const auto rows = util::ReadCsv(in, {.report = &report});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "d");
  EXPECT_EQ(report.count(ParseErrorCategory::kUnterminatedQuote), 1u);
}

TEST(BeaconDatasetLoad, LenientSkipsBadRows) {
  std::istringstream in(
      "block,hits,netinfo_hits,cellular,wifi,ethernet,other,mobile_browser\n"
      "10.0.0.0/24,10,5,4,1,0,0,6\n"
      "not-a-prefix,10,5,4,1,0,0,6\n"
      "10.0.1.0/24,10,5\n"
      "10.0.2.0/24,10,5,nine,1,0,0,6\n"
      "10.0.3.0/24,10,20,4,1,0,0,6\n"  // netinfo_hits > hits
      "10.0.4.0/24,8,4,4,0,0,0,2\n");
  IngestReport report(IngestPolicy::kSkip, {});
  const auto loaded = dataset::BeaconDataset::LoadCsv(in, {.report = &report});
  EXPECT_EQ(loaded.block_count(), 2u);
  EXPECT_EQ(report.count(ParseErrorCategory::kBadAddress), 1u);
  EXPECT_EQ(report.count(ParseErrorCategory::kTruncatedLine), 1u);
  EXPECT_EQ(report.count(ParseErrorCategory::kBadNumber), 1u);
  EXPECT_EQ(report.count(ParseErrorCategory::kInconsistentRecord), 1u);
  EXPECT_EQ(report.lines_rejected(), 4u);
}

TEST(DemandDatasetLoad, LenientSkipsBadRows) {
  std::istringstream in(
      "block,demand_du\n"
      "10.0.0.0/24,5.5\n"
      "10.0.1.0/24,not-a-number\n"
      "10.0.2.0/24,-3.0\n"  // negative demand is inconsistent
      "10.0.3.0/24,1.5\n");
  IngestReport report(IngestPolicy::kSkip, {});
  const auto loaded = dataset::DemandDataset::LoadCsv(in, {.report = &report});
  EXPECT_EQ(loaded.block_count(), 2u);
  EXPECT_EQ(report.count(ParseErrorCategory::kBadNumber), 1u);
  EXPECT_EQ(report.count(ParseErrorCategory::kInconsistentRecord), 1u);
}

TEST(AsDatabaseLoad, LenientSkipsBadRowsAndMissingHeader) {
  // No header: the first data row is consumed by the header check and
  // rejected; the remaining rows still load.
  std::istringstream in(
      "1,GoodAS,US,NA,Transit/Access,Mixed\n"
      "2,BadContinent,US,XX,Transit/Access,Mixed\n"
      "3,BadKind,US,NA,Transit/Access,flying-saucer\n"
      "4,AlsoGood,DE,EU,Content,FixedOnly\n");
  IngestReport report(IngestPolicy::kSkip, {});
  const auto db = asdb::LoadAsDatabaseCsv(in, {.report = &report});
  EXPECT_EQ(report.count(ParseErrorCategory::kBadHeader), 1u);
  EXPECT_EQ(report.count(ParseErrorCategory::kBadEnumValue), 2u);
  EXPECT_EQ(db.Find(4) != nullptr, true);
  EXPECT_EQ(db.Find(1), nullptr);  // eaten by the header slot
}

TEST(AsDatabaseLoad, EmptyStreamThrowsEvenWhenLenient) {
  std::istringstream in("");
  IngestReport report(IngestPolicy::kSkip, {});
  EXPECT_THROW((void)asdb::LoadAsDatabaseCsv(in, {.report = &report}), ParseError);
}

TEST(RoutingTableLoad, LenientSkipsBadRows) {
  std::istringstream in(
      "prefix,asn\n"
      "10.0.0.0/24,1\n"
      "10.0.1.0/24,zero\n"
      "garbage/99,1\n"
      "10.0.2.0/24,2\n");
  IngestReport report(IngestPolicy::kSkip, {});
  const auto rib = asdb::LoadRoutingTableCsv(in, {.report = &report});
  EXPECT_EQ(report.count(ParseErrorCategory::kBadNumber), 1u);
  EXPECT_EQ(report.count(ParseErrorCategory::kBadAddress), 1u);
  EXPECT_TRUE(rib.OriginOf(netaddr::IpAddress::Parse("10.0.2.9")).has_value());
}

// ---- LoadOptions -----------------------------------------------------------

TEST(LoadOptions, InlinePolicyNeedsNoExternalReport) {
  std::istringstream in("a,b\n\"oops\nc,d\n");
  const auto rows = util::ReadCsv(in, {.policy = IngestPolicy::kSkip});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "d");
}

TEST(LoadOptions, InlineQuarantineStream) {
  std::istringstream in("a,b\n\"oops\nc,d\n");
  std::ostringstream quarantine;
  const auto rows = util::ReadCsv(
      in, {.policy = IngestPolicy::kQuarantine, .quarantine = &quarantine});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(quarantine.str(), "\"oops\n");
}

TEST(LoadOptions, InlineBudgetEnforced) {
  std::istringstream in("\"oops\n\"oops\nc,d\n");  // 2 of 3 lines rejected
  EXPECT_THROW(
      (void)util::ReadCsv(in, {.policy = IngestPolicy::kSkip,
                               .limits = {.max_error_rate = 0.5}}),
      util::IngestBudgetError);
}

TEST(LoadOptions, ExternalReportWinsOverInlineFields) {
  // The report's own (strict) policy governs, not the inline kSkip.
  std::istringstream in("\"oops\n");
  IngestReport report;  // strict
  EXPECT_THROW(
      (void)util::ReadCsv(in, {.policy = IngestPolicy::kSkip, .report = &report}),
      ParseError);
}

TEST(LoadOptions, ExternalReportAccumulatesAcrossCalls) {
  // LoadOptions{.report = &report} is the migration target of the old
  // (istream, IngestReport&) overloads: one report spans many loads.
  std::istringstream in("a,b\n\"oops\nc,d\n");
  IngestReport report(IngestPolicy::kSkip, {});
  const auto rows = util::ReadCsv(in, {.report = &report});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(report.count(ParseErrorCategory::kUnterminatedQuote), 1u);
  std::istringstream in2("\"oops again\n");
  EXPECT_TRUE(util::ReadCsv(in2, {.report = &report}).empty());
  EXPECT_EQ(report.count(ParseErrorCategory::kUnterminatedQuote), 2u);
}

// ---- end-to-end: corrupted beacon log --------------------------------------

std::string TinyBeaconLog() {
  static const std::string log = [] {
    const simnet::World world = simnet::World::Generate(simnet::WorldConfig::Tiny());
    const cdn::BeaconGenerator generator(world);
    std::string out;
    (void)generator.StreamHits(
        [&](const netaddr::Prefix&, const cdn::BeaconHit& hit) {
          out += cdn::FormatBeaconLogLine(hit);
          out += '\n';
        },
        20000);
    return out;
  }();
  return log;
}

// Corrupt ~1% of lines with record-destroying faults, but keep the
// original records alongside the corrupted copies so clean data survives.
std::string CorruptedTinyLog(faultsim::CorruptionStats* stats = nullptr) {
  faultsim::StreamCorruptor corruptor(faultsim::FaultMix::Destructive(0.01), 99,
                                      /*preserve_originals=*/true);
  std::istringstream in(TinyBeaconLog());
  std::ostringstream out;
  const auto pass = corruptor.Corrupt(in, out);
  if (stats != nullptr) *stats = pass;
  return out.str();
}

TEST(CorruptedIngest, SkipPolicyReproducesCleanClassification) {
  std::istringstream clean_in(TinyBeaconLog());
  const auto clean = cdn::AggregateBeaconLog(clean_in);

  faultsim::CorruptionStats stats;
  std::istringstream dirty_in(CorruptedTinyLog(&stats));
  ASSERT_GT(stats.total_faults(), 0u);
  IngestReport report(IngestPolicy::kSkip, IngestLimits{.max_error_rate = 0.05});
  const auto dirty = cdn::AggregateBeaconLog(dirty_in, {.report = &report});

  // Every injected fault was rejected; every clean record survived.
  EXPECT_EQ(report.lines_rejected(), stats.total_faults());
  EXPECT_EQ(dirty.block_count(), clean.block_count());
  EXPECT_EQ(dirty.total_hits(), clean.total_hits());
  EXPECT_EQ(dirty.total_netinfo_hits(), clean.total_netinfo_hits());

  const auto classify = [](const dataset::BeaconDataset& d) {
    return core::SubnetClassifier().Classify(d);
  };
  EXPECT_EQ(classify(dirty).cellular(), classify(clean).cellular());
  EXPECT_EQ(classify(dirty).ratios(), classify(clean).ratios());
}

TEST(CorruptedIngest, QuarantineCollectsExactlyTheRejectedLines) {
  const std::string dirty = CorruptedTinyLog();

  // Expected quarantine: the non-blank lines ParseBeaconLogLine rejects.
  std::string expected;
  {
    std::istringstream in(dirty);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      try {
        (void)cdn::ParseBeaconLogLine(line);
      } catch (const ParseError&) {
        expected += line;
        expected += '\n';
      }
    }
  }
  ASSERT_FALSE(expected.empty());

  std::ostringstream quarantine;
  IngestReport report(IngestPolicy::kQuarantine,
                      IngestLimits{.max_error_rate = 0.05}, &quarantine);
  std::istringstream in(dirty);
  const auto dataset = cdn::AggregateBeaconLog(in, {.report = &report});
  EXPECT_GT(dataset.block_count(), 0u);
  EXPECT_EQ(quarantine.str(), expected);

  // Replay: the quarantined lines are all still rejects (nothing lost by
  // skipping them) — replaying after an upstream fix would re-ingest.
  std::istringstream replay(quarantine.str());
  IngestReport replay_report(IngestPolicy::kSkip, {});
  const auto replayed = cdn::AggregateBeaconLog(replay, {.report = &replay_report});
  EXPECT_EQ(replayed.block_count(), 0u);
  EXPECT_EQ(replay_report.lines_ok(), 0u);
  EXPECT_EQ(replay_report.lines_rejected(), report.lines_rejected());
}

TEST(CorruptedIngest, StrictModeFailsWithLineNumber) {
  std::istringstream in(CorruptedTinyLog());
  try {
    (void)cdn::AggregateBeaconLog(in);
    FAIL() << "expected ParseError on a corrupted stream";
  } catch (const ParseError& e) {
    EXPECT_TRUE(e.line_number().has_value());
    EXPECT_TRUE(std::string(e.what()).starts_with("line "));
  }
}

TEST(CorruptedIngest, ExceedingTheBudgetThrows) {
  std::istringstream in(CorruptedTinyLog());
  IngestReport report(IngestPolicy::kSkip, IngestLimits{.max_error_rate = 0.0001});
  EXPECT_THROW((void)cdn::AggregateBeaconLog(in, {.report = &report}), util::IngestBudgetError);
}

// ---- wrong-header recovery --------------------------------------------------
// A file with a wrong (not just missing) header must (a) name the
// offending header text in the strict error, and (b) in skip mode,
// consume the bad header once and then load every data row after it —
// in every CSV loader.

TEST(WrongHeader, StrictErrorNamesTheOffendingHeader) {
  std::istringstream in("asn,nome,pais,continente,clase,tipo\n");
  try {
    (void)asdb::LoadAsDatabaseCsv(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.category(), ParseErrorCategory::kBadHeader);
    const std::string what = e.what();
    EXPECT_NE(what.find("asn,nome,pais,continente,clase,tipo"), std::string::npos)
        << "error must quote the header it saw: " << what;
    EXPECT_NE(what.find("asn,name,country,continent,class,kind"), std::string::npos)
        << "error must name the header it wanted: " << what;
  }
}

TEST(WrongHeader, AsDatabaseRecoversInSkipMode) {
  std::istringstream in(
      "asn;name;country;continent;class;kind\n"
      "1,GoodAS,US,NA,Transit/Access,Mixed\n"
      "2,AlsoGood,DE,EU,Content,FixedOnly\n");
  IngestReport report(IngestPolicy::kSkip, {});
  const auto db = asdb::LoadAsDatabaseCsv(in, {.report = &report});
  EXPECT_EQ(report.count(ParseErrorCategory::kBadHeader), 1u);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_NE(db.Find(1), nullptr);
  EXPECT_NE(db.Find(2), nullptr);
}

TEST(WrongHeader, RoutingTableRecoversInSkipMode) {
  std::istringstream in(
      "prefix,origin_asn\n"
      "10.0.0.0/24,1\n"
      "10.0.1.0/24,2\n");
  IngestReport report(IngestPolicy::kSkip, {});
  const auto rib = asdb::LoadRoutingTableCsv(in, {.report = &report});
  EXPECT_EQ(report.count(ParseErrorCategory::kBadHeader), 1u);
  EXPECT_EQ(rib.size(), 2u);
  EXPECT_EQ(report.lines_ok(), 2u);
}

TEST(WrongHeader, BeaconDatasetRecoversInSkipMode) {
  std::istringstream in(
      "block,hits,netinfo,cellular,wifi,ethernet,other,mobile\n"
      "10.0.0.0/24,10,8,6,2,0,0,5\n"
      "10.0.1.0/24,4,4,0,4,0,0,1\n");
  IngestReport report(IngestPolicy::kSkip, {});
  const auto loaded = dataset::BeaconDataset::LoadCsv(in, {.report = &report});
  EXPECT_EQ(report.count(ParseErrorCategory::kBadHeader), 1u);
  EXPECT_EQ(loaded.block_count(), 2u);
  EXPECT_EQ(report.lines_ok(), 2u);
}

TEST(WrongHeader, DemandDatasetRecoversInSkipMode) {
  std::istringstream in(
      "block,demand\n"
      "10.0.0.0/24,12.5\n"
      "10.0.1.0/24,0.5\n");
  IngestReport report(IngestPolicy::kSkip, {});
  const auto loaded = dataset::DemandDataset::LoadCsv(in, {.report = &report});
  EXPECT_EQ(report.count(ParseErrorCategory::kBadHeader), 1u);
  EXPECT_EQ(loaded.block_count(), 2u);
  EXPECT_EQ(report.lines_ok(), 2u);
}

}  // namespace
}  // namespace cellspot
