#include "cellspot/core/as_pipeline.hpp"

#include <gtest/gtest.h>

namespace cellspot::core {
namespace {

using dataset::BeaconBlockStats;
using netaddr::Prefix;

BeaconBlockStats Stats(std::uint64_t hits, std::uint64_t netinfo, std::uint64_t cellular) {
  BeaconBlockStats s;
  s.hits = hits;
  s.netinfo_hits = netinfo;
  s.cellular_labels = cellular;
  s.wifi_labels = netinfo - cellular;
  return s;
}

struct Fixture {
  asdb::RoutingTable rib;
  asdb::AsDatabase as_db;
  dataset::BeaconDataset beacons;
  dataset::DemandDataset demand;

  void AddAs(asdb::AsNumber asn, asdb::AsClass cls) {
    asdb::AsRecord r;
    r.asn = asn;
    r.name = "AS" + std::to_string(asn);
    r.cls = cls;
    as_db.Upsert(std::move(r));
  }

  void AddBlock(const char* prefix, asdb::AsNumber asn, BeaconBlockStats stats, double du) {
    const auto block = Prefix::Parse(prefix);
    rib.Announce(block, asn);
    if (stats.hits > 0) beacons.Add(block, stats);
    if (du > 0.0) demand.Add(block, du);
  }
};

TEST(AggregateCandidateAses, OnlyAsesWithCellularBlocks) {
  Fixture f;
  f.AddAs(100, asdb::AsClass::kTransitAccess);
  f.AddAs(200, asdb::AsClass::kTransitAccess);
  f.AddBlock("198.51.101.0/24", 100, Stats(1000, 130, 120), 5.0);  // cellular
  f.AddBlock("198.51.102.0/24", 200, Stats(1000, 130, 2), 9.0);    // fixed only

  const auto classified = SubnetClassifier().Classify(f.beacons);
  const auto candidates = AggregateCandidateAses(f.rib, classified, f.beacons, f.demand);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].asn, 100u);
  EXPECT_EQ(candidates[0].cell_blocks_v4, 1u);
  EXPECT_DOUBLE_EQ(candidates[0].cell_demand_du, 5.0);
}

TEST(AggregateCandidateAses, TotalsIncludeBeaconlessDemand) {
  Fixture f;
  f.AddAs(100, asdb::AsClass::kTransitAccess);
  f.AddBlock("198.51.101.0/24", 100, Stats(500, 70, 65), 5.0);
  f.AddBlock("198.51.102.0/24", 100, {}, 45.0);  // demand-only block

  const auto classified = SubnetClassifier().Classify(f.beacons);
  const auto candidates = AggregateCandidateAses(f.rib, classified, f.beacons, f.demand);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_DOUBLE_EQ(candidates[0].total_demand_du, 50.0);
  EXPECT_DOUBLE_EQ(candidates[0].cell_demand_du, 5.0);
  EXPECT_NEAR(candidates[0].Cfd(), 0.1, 1e-12);
  EXPECT_EQ(candidates[0].demand_blocks, 2u);
  EXPECT_EQ(candidates[0].beacon_hits, 500u);
}

TEST(AggregateCandidateAses, CountsV6Separately) {
  Fixture f;
  f.AddAs(100, asdb::AsClass::kTransitAccess);
  f.AddBlock("198.51.101.0/24", 100, Stats(100, 40, 38), 1.0);
  f.AddBlock("2001:db8:1::/48", 100, Stats(100, 40, 39), 1.0);
  const auto classified = SubnetClassifier().Classify(f.beacons);
  const auto candidates = AggregateCandidateAses(f.rib, classified, f.beacons, f.demand);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].cell_blocks_v4, 1u);
  EXPECT_EQ(candidates[0].cell_blocks_v6, 1u);
  EXPECT_EQ(candidates[0].cellular_blocks.size(), 2u);
}

Fixture FilterFixture() {
  Fixture f;
  // AS 100: healthy cellular access network.
  f.AddAs(100, asdb::AsClass::kTransitAccess);
  f.AddBlock("198.51.101.0/24", 100, Stats(5000, 660, 600), 20.0);
  // AS 200: tiny cellular pool, fails rule 1 (< 0.1 DU).
  f.AddAs(200, asdb::AsClass::kTransitAccess);
  f.AddBlock("198.51.102.0/24", 200, Stats(2000, 260, 250), 0.05);
  // AS 300: enough demand but too few beacon responses (rule 2).
  f.AddAs(300, asdb::AsClass::kTransitAccess);
  f.AddBlock("198.51.103.0/24", 300, Stats(150, 20, 18), 3.0);
  // AS 400: proxy service, Content class (rule 3).
  f.AddAs(400, asdb::AsClass::kContent);
  f.AddBlock("198.51.104.0/24", 400, Stats(9000, 1200, 1000), 15.0);
  // AS 500: unknown class (rule 3).
  f.AddBlock("198.51.105.0/24", 500, Stats(9000, 1200, 1000), 15.0);
  return f;
}

TEST(ApplyAsFilters, RulesFireInPaperOrder) {
  Fixture f = FilterFixture();
  const auto classified = SubnetClassifier().Classify(f.beacons);
  auto candidates = AggregateCandidateAses(f.rib, classified, f.beacons, f.demand);
  ASSERT_EQ(candidates.size(), 5u);

  const AsFilterOutcome outcome = ApplyAsFilters(std::move(candidates), f.as_db);
  EXPECT_EQ(outcome.input_count, 5u);
  EXPECT_EQ(outcome.removed_low_demand, 1u);
  EXPECT_EQ(outcome.removed_low_hits, 1u);
  EXPECT_EQ(outcome.removed_class, 2u);
  ASSERT_EQ(outcome.kept.size(), 1u);
  EXPECT_EQ(outcome.kept[0].asn, 100u);
}

TEST(ApplyAsFilters, Rule1TakesPrecedence) {
  // An AS failing both rule 1 and rule 2 is attributed to rule 1 (the
  // paper applies the heuristics sequentially).
  Fixture f;
  f.AddAs(100, asdb::AsClass::kTransitAccess);
  f.AddBlock("198.51.101.0/24", 100, Stats(50, 10, 9), 0.01);
  const auto classified = SubnetClassifier().Classify(f.beacons);
  const auto outcome =
      ApplyAsFilters(AggregateCandidateAses(f.rib, classified, f.beacons, f.demand), f.as_db);
  EXPECT_EQ(outcome.removed_low_demand, 1u);
  EXPECT_EQ(outcome.removed_low_hits, 0u);
}

TEST(ApplyAsFilters, ClassRuleCanBeDisabled) {
  Fixture f = FilterFixture();
  const auto classified = SubnetClassifier().Classify(f.beacons);
  auto candidates = AggregateCandidateAses(f.rib, classified, f.beacons, f.demand);
  AsFilterConfig config;
  config.require_transit_access_class = false;
  const auto outcome = ApplyAsFilters(std::move(candidates), f.as_db, config);
  EXPECT_EQ(outcome.removed_class, 0u);
  EXPECT_EQ(outcome.kept.size(), 3u);
}

TEST(ApplyAsFilters, CustomThresholds) {
  Fixture f = FilterFixture();
  const auto classified = SubnetClassifier().Classify(f.beacons);
  auto candidates = AggregateCandidateAses(f.rib, classified, f.beacons, f.demand);
  AsFilterConfig config;
  config.min_cell_demand_du = 30.0;  // nobody passes
  const auto outcome = ApplyAsFilters(std::move(candidates), f.as_db, config);
  EXPECT_EQ(outcome.removed_low_demand, 5u);
  EXPECT_TRUE(outcome.kept.empty());
}

TEST(IsDedicatedTest, CfdThreshold) {
  AsAggregate as;
  as.cell_demand_du = 95.0;
  as.total_demand_du = 100.0;
  EXPECT_TRUE(IsDedicated(as));
  as.cell_demand_du = 89.0;
  EXPECT_FALSE(IsDedicated(as));
  as.total_demand_du = 0.0;
  EXPECT_FALSE(IsDedicated(as));
}

TEST(AsAggregateMetrics, SubnetFraction) {
  AsAggregate as;
  as.cell_blocks_v4 = 3;
  as.observed_blocks_v4 = 10;
  as.observed_blocks_v6 = 2;
  EXPECT_DOUBLE_EQ(as.CellSubnetFraction(), 0.25);
}

}  // namespace
}  // namespace cellspot::core
