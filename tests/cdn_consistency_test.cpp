// Integration consistency: the per-hit streaming path and the aggregate
// path must describe the same world (same per-block hit counts and label
// totals for every fully streamed block).
#include <gtest/gtest.h>

#include <unordered_map>

#include "cellspot/cdn/beacon_generator.hpp"
#include "cellspot/cdn/beacon_log.hpp"
#include "cellspot/netinfo/availability.hpp"

namespace cellspot::cdn {
namespace {

TEST(StreamVsAggregate, FullyStreamedBlocksMatchDataset) {
  const simnet::World world = simnet::World::Generate(simnet::WorldConfig::Tiny());
  const BeaconGenerator gen(world);
  const dataset::BeaconDataset aggregate = gen.GenerateDataset();

  // Stream a prefix of the hit sequence and re-aggregate it.
  dataset::BeaconDataset streamed;
  netaddr::Prefix last_block;
  gen.StreamHits(
      [&](const netaddr::Prefix& block, const BeaconHit& hit) {
        AccumulateHit(streamed, hit);
        last_block = block;
        // The hit's client address must aggregate into the same block.
        EXPECT_EQ(netaddr::BlockOf(hit.client_ip), block);
      },
      150000);

  std::size_t compared = 0;
  streamed.ForEach([&](const netaddr::Prefix& block,
                       const dataset::BeaconBlockStats& s) {
    if (block == last_block) return;  // possibly truncated by the cap
    const auto* full = aggregate.Find(block);
    ASSERT_NE(full, nullptr) << block.ToString();
    EXPECT_EQ(s.hits, full->hits) << block.ToString();
    EXPECT_EQ(s.netinfo_hits, full->netinfo_hits) << block.ToString();
    EXPECT_EQ(s.cellular_labels, full->cellular_labels) << block.ToString();
    EXPECT_EQ(s.wifi_labels, full->wifi_labels) << block.ToString();
    ++compared;
  });
  EXPECT_GT(compared, 20u);
}

TEST(StreamVsAggregate, StreamedDaysCoverTheWindow) {
  const simnet::World world = simnet::World::Generate(simnet::WorldConfig::Tiny());
  const BeaconGenerator gen(world);
  std::unordered_map<int, int> day_histogram;
  gen.StreamHits(
      [&](const netaddr::Prefix&, const BeaconHit& hit) { ++day_histogram[hit.day]; },
      60000);
  // All 31 days of December appear in a 60k-hit sample.
  EXPECT_EQ(day_histogram.size(), 31u);
}

TEST(StreamVsAggregate, NetinfoHitsUseApiCapableBrowsersOnly) {
  const simnet::World world = simnet::World::Generate(simnet::WorldConfig::Tiny());
  BeaconGenerator gen(world);
  gen.StreamHits(
      [&](const netaddr::Prefix&, const BeaconHit& hit) {
        if (hit.has_netinfo) {
          EXPECT_GT(netinfo::NetInfoAvailability(hit.browser,
                                                 world.config().study_month),
                    0.0)
              << std::string(netinfo::BrowserName(hit.browser));
        }
      },
      30000);
}

}  // namespace
}  // namespace cellspot::cdn
