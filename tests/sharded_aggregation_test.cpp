// The sharded aggregation engine's central contract: byte-identical
// output (floats compared bit for bit) at any shard count x thread
// count combination, against the sequential reference engine — plus the
// deterministic shard key, the pool/gauge telemetry, the per-shard
// classified snapshot sections (round trip, parallel mapped decode,
// corruption quarantine + rebuild) and the stream daemon's export path.
#include "cellspot/core/sharded_aggregation.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cellspot/analysis/experiment.hpp"
#include "cellspot/exec/executor.hpp"
#include "cellspot/faultsim/stream_corruptor.hpp"
#include "cellspot/obs/metrics.hpp"
#include "cellspot/snapshot/mapped.hpp"
#include "cellspot/snapshot/serde.hpp"
#include "cellspot/snapshot/snapshot.hpp"
#include "cellspot/snapshot/stage_cache.hpp"
#include "cellspot/stream/daemon.hpp"
#include "cellspot/stream/event.hpp"

namespace cellspot {
namespace {

namespace fs = std::filesystem;

const analysis::Experiment& TinyExperiment() {
  static const analysis::Experiment exp =
      analysis::RunExperiment(simnet::WorldConfig::Tiny());
  return exp;
}

std::uint64_t Bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Field-by-field equality with doubles compared as raw bits: the
/// engine's contract is byte-identity, so 1e-12 of fold-order drift is
/// a failure, not noise.
void ExpectBitIdentical(const std::vector<core::AsAggregate>& got,
                        const std::vector<core::AsAggregate>& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    const core::AsAggregate& g = got[i];
    const core::AsAggregate& w = want[i];
    ASSERT_EQ(g.asn, w.asn) << label << " row " << i;
    EXPECT_EQ(g.cell_blocks_v4, w.cell_blocks_v4) << label << " asn " << w.asn;
    EXPECT_EQ(g.cell_blocks_v6, w.cell_blocks_v6) << label << " asn " << w.asn;
    EXPECT_EQ(g.observed_blocks_v4, w.observed_blocks_v4) << label << " asn " << w.asn;
    EXPECT_EQ(g.observed_blocks_v6, w.observed_blocks_v6) << label << " asn " << w.asn;
    EXPECT_EQ(g.demand_blocks, w.demand_blocks) << label << " asn " << w.asn;
    EXPECT_EQ(Bits(g.cell_demand_du), Bits(w.cell_demand_du)) << label << " asn " << w.asn;
    EXPECT_EQ(Bits(g.total_demand_du), Bits(w.total_demand_du)) << label << " asn " << w.asn;
    EXPECT_EQ(g.beacon_hits, w.beacon_hits) << label << " asn " << w.asn;
    EXPECT_EQ(g.cellular_blocks, w.cellular_blocks) << label << " asn " << w.asn;
  }
}

std::uint64_t CounterValue(std::string_view name) {
  for (const auto& c : obs::MetricsRegistry::Global().Snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double GaugeValue(std::string_view name) {
  for (const auto& g : obs::MetricsRegistry::Global().Snapshot().gauges) {
    if (g.name == name) return g.value;
  }
  return -1.0;
}

TEST(ShardOfAs, DeterministicInRangeAndSpreading) {
  for (const asdb::AsNumber asn : {1u, 64512u, 4200000000u}) {
    EXPECT_EQ(core::ShardOfAs(asn, 1), 0u);
    EXPECT_EQ(core::ShardOfAs(asn, 8), core::ShardOfAs(asn, 8)) << "must be pure";
    EXPECT_LT(core::ShardOfAs(asn, 8), 8u);
  }
  // FNV over the ASN bytes spreads a dense ASN range over every shard
  // (sequential ASNs mod N would stripe; hashing must not degenerate).
  std::set<std::size_t> hit;
  for (asdb::AsNumber asn = 1; asn <= 1024; ++asn) hit.insert(core::ShardOfAs(asn, 8));
  EXPECT_EQ(hit.size(), 8u);
}

TEST(DefaultAggregationShards, EnvOverridesAndRejectsGarbage) {
  ::unsetenv("CELLSPOT_AGG_SHARDS");
  EXPECT_EQ(core::DefaultAggregationShards(), 8u);
  ::setenv("CELLSPOT_AGG_SHARDS", "3", 1);
  EXPECT_EQ(core::DefaultAggregationShards(), 3u);
  for (const char* bad : {"abc", "0", "-2", "1.5"}) {
    ::setenv("CELLSPOT_AGG_SHARDS", bad, 1);
    EXPECT_THROW((void)core::DefaultAggregationShards(), std::invalid_argument)
        << "value '" << bad << "'";
  }
  ::unsetenv("CELLSPOT_AGG_SHARDS");
}

TEST(ShardedAggregation, ByteIdenticalAcrossShardAndThreadMatrix) {
  const analysis::Experiment& exp = TinyExperiment();
  exec::Executor ref_ex(1);
  const std::vector<core::AsAggregate> reference = core::AggregateCandidateAsesSequential(
      exp.world.rib(), exp.classified, exp.beacons, exp.demand, ref_ex);
  ASSERT_FALSE(reference.empty());

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const unsigned threads : {1u, 2u, 8u}) {
      exec::Executor ex(threads);
      const std::vector<core::AsAggregate> sharded = core::AggregateCandidateAsesSharded(
          exp.world.rib(), exp.classified, exp.beacons, exp.demand, ex,
          core::AggregationConfig{.shards = shards});
      ExpectBitIdentical(sharded, reference,
                         "shards=" + std::to_string(shards) +
                             " threads=" + std::to_string(threads));
    }
  }
}

TEST(ShardedAggregation, DefaultOverloadMatchesSequentialEngine) {
  const analysis::Experiment& exp = TinyExperiment();
  exec::Executor ex(4);
  const auto reference = core::AggregateCandidateAsesSequential(
      exp.world.rib(), exp.classified, exp.beacons, exp.demand, ex);
  const auto via_default = core::AggregateCandidateAses(exp.world.rib(), exp.classified,
                                                        exp.beacons, exp.demand);
  ExpectBitIdentical(via_default, reference, "default overload");
}

TEST(ShardedAggregation, RecordsShardSpansAndPoolGauges) {
  const analysis::Experiment& exp = TinyExperiment();
  obs::MetricsRegistry::Global().ResetForTest();
  exec::Executor ex(2);
  const auto candidates = core::AggregateCandidateAsesSharded(
      exp.world.rib(), exp.classified, exp.beacons, exp.demand, ex,
      core::AggregationConfig{.shards = 4});
  ASSERT_FALSE(candidates.empty());

  EXPECT_EQ(GaugeValue("aggregate.shards"), 4.0);
  // Every candidate AS holds at least one cellular block, so at least
  // one chunk was pooled somewhere; capacity is a whole-slab multiple.
  EXPECT_GE(GaugeValue("aggregate.pool.chunk_hwm"), 1.0);
  EXPECT_GE(GaugeValue("aggregate.pool.slabs"), 1.0);
  EXPECT_GE(GaugeValue("aggregate.pool.chunk_capacity"),
            GaugeValue("aggregate.pool.chunk_hwm"));

  std::uint64_t shard_spans = 0;
  for (const auto& s : obs::MetricsRegistry::Global().Snapshot().spans) {
    if (s.path.find("aggregate.shard") != std::string::npos) shard_spans += s.count;
  }
  EXPECT_EQ(shard_spans, 4u);
}

// ---------------------------------------------------------------------------
// Per-shard classified snapshot sections.

TEST(ClassifiedShardedSnapshot, RoundTripsAtSeveralShardCounts) {
  const core::ClassifiedSubnets& classified = TinyExperiment().classified;
  const std::string canonical =
      snapshot::EncodeSnapshot(snapshot::EncodeClassified(classified));

  // 64 shards on a Tiny world exercises empty trailing shards.
  for (const std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                              std::size_t{64}}) {
    const std::vector<snapshot::Section> sections =
        snapshot::EncodeClassifiedSharded(classified, k);
    bool has_manifest = false;
    for (const snapshot::Section& s : sections) {
      if (s.name == snapshot::kClassifiedShardsSection) has_manifest = true;
    }
    EXPECT_TRUE(has_manifest) << k << " shards";

    const core::ClassifiedSubnets decoded = snapshot::DecodeClassified(sections);
    EXPECT_EQ(decoded.ratios(), classified.ratios()) << k << " shards";
    EXPECT_EQ(decoded.cellular(), classified.cellular()) << k << " shards";
    // Ordered concatenation preserved insertion order, so re-encoding
    // in the canonical single-merge layout is byte-identical.
    EXPECT_EQ(snapshot::EncodeSnapshot(snapshot::EncodeClassified(decoded)), canonical)
        << k << " shards";
  }
}

TEST(ClassifiedShardedSnapshot, LegacyTwoSectionLayoutStillDecodes) {
  const core::ClassifiedSubnets& classified = TinyExperiment().classified;
  const core::ClassifiedSubnets decoded =
      snapshot::DecodeClassified(snapshot::EncodeClassified(classified));
  EXPECT_EQ(decoded.ratios(), classified.ratios());
  EXPECT_EQ(decoded.cellular(), classified.cellular());
}

TEST(ClassifiedShardedSnapshot, MappedDecodeMatchesWithAndWithoutExecutor) {
  const core::ClassifiedSubnets& classified = TinyExperiment().classified;
  const fs::path path = fs::path(::testing::TempDir()) / "classified_sharded.snap";
  fs::remove(path);
  snapshot::WriteSnapshotFile(path, snapshot::EncodeClassifiedSharded(classified, 8));

  const snapshot::MappedSnapshot snap = snapshot::MappedSnapshot::Open(path);
  exec::Executor ex(4);
  const core::ClassifiedSubnets parallel = snapshot::DecodeClassifiedMapped(snap, &ex);
  const core::ClassifiedSubnets sequential =
      snapshot::DecodeClassifiedMapped(snap, nullptr);
  EXPECT_EQ(parallel.ratios(), classified.ratios());
  EXPECT_EQ(parallel.cellular(), classified.cellular());
  EXPECT_EQ(sequential.ratios(), classified.ratios());
  EXPECT_EQ(sequential.cellular(), classified.cellular());
}

TEST(ClassifiedShardedSnapshot, GarbledShardSectionIsRejectedNotCrashed) {
  const core::ClassifiedSubnets& classified = TinyExperiment().classified;
  const std::vector<snapshot::Section> clean =
      snapshot::EncodeClassifiedSharded(classified, 8);

  // Destructive line-oriented damage to ONE shard's payload, several
  // seeds: whatever survives the framing must fail the per-entry
  // validation or the manifest cross-check — never crash, never decode
  // to silently different data.
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    for (const char* target : {"classified.ratios.3", "classified.cellular.2"}) {
      std::vector<snapshot::Section> damaged = clean;
      bool found = false;
      for (snapshot::Section& s : damaged) {
        if (s.name != target) continue;
        found = true;
        std::istringstream in(s.payload);
        std::ostringstream out;
        faultsim::StreamCorruptor corruptor(faultsim::FaultMix::Destructive(0.8), seed);
        corruptor.Corrupt(in, out);
        s.payload = out.str();
        ASSERT_NE(s.payload, clean[&s - damaged.data()].payload)
            << target << " seed " << seed;
      }
      ASSERT_TRUE(found) << target;
      EXPECT_THROW((void)snapshot::DecodeClassified(damaged), snapshot::SnapshotError)
          << target << " seed " << seed;
    }
  }
}

TEST(ClassifiedShardedSnapshot, ShardCountOfZeroOrImplausibleIsMalformed) {
  const core::ClassifiedSubnets& classified = TinyExperiment().classified;
  std::vector<snapshot::Section> sections =
      snapshot::EncodeClassifiedSharded(classified, 2);
  for (snapshot::Section& s : sections) {
    if (s.name == snapshot::kClassifiedShardsSection) s.payload[0] = '\0';  // shards=0
  }
  EXPECT_THROW((void)snapshot::DecodeClassified(sections), snapshot::SnapshotError);
}

TEST(ClassifiedShardedCache, CorruptedShardSectionQuarantinesAndRebuilds) {
  const analysis::Experiment& exp = TinyExperiment();
  const simnet::WorldConfig config = exp.world.config();
  const fs::path dir = fs::path(::testing::TempDir()) / "shardcache_corrupt";
  fs::remove_all(dir);
  snapshot::StageCache cache(dir);
  ASSERT_TRUE(cache.enabled());
  const fs::path path = cache.ClassifiedPath(config, {});
  exec::Executor ex(4);

  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    obs::MetricsRegistry::Global().ResetForTest();
    fs::remove(path.string() + ".corrupt");
    cache.StoreClassified(config, {}, exp.classified);
    ASSERT_TRUE(fs::exists(path));

    // Garble one shard section's payload and re-frame the container, so
    // the file-level CRC is valid and the damage reaches the shard
    // decoder itself.
    std::vector<snapshot::Section> sections = snapshot::ReadSnapshotFile(path);
    bool damaged = false;
    for (snapshot::Section& s : sections) {
      if (s.name != "classified.ratios.1") continue;
      std::istringstream in(s.payload);
      std::ostringstream out;
      faultsim::StreamCorruptor corruptor(faultsim::FaultMix::Destructive(0.8), seed);
      corruptor.Corrupt(in, out);
      damaged = s.payload != out.str();
      s.payload = out.str();
    }
    ASSERT_TRUE(damaged) << "seed " << seed;
    snapshot::WriteSnapshotFile(path, sections);

    auto loaded = cache.TryLoadClassified(config, {}, &ex);
    EXPECT_FALSE(loaded.has_value()) << "seed " << seed;
    EXPECT_EQ(CounterValue("snapshot.miss"), 1u) << "seed " << seed;
    EXPECT_FALSE(fs::exists(path)) << "corrupt file must not stay in place";
    EXPECT_TRUE(fs::exists(path.string() + ".corrupt")) << "seed " << seed;

    // Rebuild: re-store and the warm path serves identical data again.
    cache.StoreClassified(config, {}, exp.classified);
    auto reloaded = cache.TryLoadClassified(config, {}, &ex);
    ASSERT_TRUE(reloaded.has_value()) << "seed " << seed;
    EXPECT_EQ(reloaded->ratios(), exp.classified.ratios());
    EXPECT_EQ(reloaded->cellular(), exp.classified.cellular());
  }
}

// ---------------------------------------------------------------------------
// Stream daemon export path.

const simnet::World& TinyWorld() {
  static const simnet::World world = simnet::World::Generate(simnet::WorldConfig::Tiny());
  return world;
}

std::string BeaconFrame(std::uint32_t subnet, std::uint32_t seq, std::uint64_t netinfo,
                        std::uint64_t cellular) {
  stream::StreamEvent e;
  e.kind = stream::EventKind::kBeacon;
  e.subnet = subnet;
  e.seq = seq;
  e.stats.hits = netinfo * 2;
  e.stats.netinfo_hits = netinfo;
  e.stats.cellular_labels = cellular;
  e.stats.wifi_labels = netinfo - cellular;
  e.stats.mobile_browser_hits = netinfo;
  return stream::EncodeEventFrame(e);
}

std::string DemandFrame(std::uint32_t subnet, std::uint32_t seq, double raw) {
  stream::StreamEvent e;
  e.kind = stream::EventKind::kDemand;
  e.subnet = subnet;
  e.seq = seq;
  e.demand_raw = raw;
  return stream::EncodeEventFrame(e);
}

TEST(StreamDaemonAggregation, ExportCandidatesMatchesBatchEngines) {
  stream::StreamDaemon daemon(TinyWorld(), {}, {});
  const std::uint32_t subnets =
      static_cast<std::uint32_t>(TinyWorld().subnets().size());
  for (std::uint32_t s = 0; s < subnets; ++s) {
    daemon.queue().Push(BeaconFrame(s, 1, /*netinfo=*/40, /*cellular=*/s % 3 ? 36 : 2));
    daemon.queue().Push(DemandFrame(s, 1, /*raw=*/100.0 + s));
  }
  while (daemon.Tick() > 0) {
  }

  exec::Executor ex(4);
  const auto via_daemon = daemon.ExportCandidates(ex, {.shards = 8});
  const auto batch = core::AggregateCandidateAsesSequential(
      TinyWorld().rib(), daemon.ExportClassified(), daemon.ExportBeacons(),
      daemon.ExportDemand(), ex);
  ASSERT_FALSE(via_daemon.empty());
  ExpectBitIdentical(via_daemon, batch, "daemon export");
}

}  // namespace
}  // namespace cellspot
