#include "cellspot/util/retry.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cellspot::util {
namespace {

TEST(RetryPolicy, DelayGrowsExponentiallyThenCaps) {
  const RetryPolicy policy{.max_attempts = 10, .base_delay_ticks = 2,
                           .max_delay_ticks = 16};
  EXPECT_EQ(policy.DelayTicks(0), 2u);
  EXPECT_EQ(policy.DelayTicks(1), 4u);
  EXPECT_EQ(policy.DelayTicks(2), 8u);
  EXPECT_EQ(policy.DelayTicks(3), 16u);   // 2<<3 = 16 hits the cap
  EXPECT_EQ(policy.DelayTicks(4), 16u);   // capped
  EXPECT_EQ(policy.DelayTicks(63), 16u);  // shift overflow guarded
}

TEST(RetryPolicy, JitterIsSeededAndBounded) {
  const RetryPolicy policy{.base_delay_ticks = 8, .max_delay_ticks = 64,
                           .jitter = 0.5};
  Rng a(123), b(123), c(999);
  std::vector<std::uint64_t> da, db;
  for (std::uint32_t k = 0; k < 8; ++k) {
    da.push_back(policy.DelayTicks(k, a));
    db.push_back(policy.DelayTicks(k, b));
  }
  EXPECT_EQ(da, db);  // same seed, same delays
  for (std::uint32_t k = 0; k < 8; ++k) {
    const std::uint64_t base = policy.DelayTicks(k);
    EXPECT_GE(da[k], base);
    EXPECT_LE(da[k], base + base / 2);  // +50% jitter at most
  }
  // A different seed diverges somewhere (overwhelmingly likely).
  bool diverged = false;
  Rng a2(123);
  for (std::uint32_t k = 0; k < 8; ++k) {
    if (policy.DelayTicks(k, a2) != policy.DelayTicks(k, c)) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(RetryPolicy, ZeroJitterDoesNotAdvanceRng) {
  const RetryPolicy policy{.jitter = 0.0};
  Rng rng(42), untouched(42);
  (void)policy.DelayTicks(3, rng);
  EXPECT_EQ(rng.UniformDouble(), untouched.UniformDouble());
}

TEST(RetryCall, FirstAttemptSucceeds) {
  int calls = 0;
  const RetryOutcome outcome = RetryCall(RetryPolicy{.max_attempts = 3}, [&] {
    ++calls;
    return true;
  });
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(outcome.retries(), 0u);
  EXPECT_EQ(calls, 1);
}

TEST(RetryCall, SucceedsAfterTransientFailures) {
  int calls = 0;
  const RetryOutcome outcome = RetryCall(RetryPolicy{.max_attempts = 5}, [&] {
    return ++calls == 3;
  });
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_EQ(outcome.retries(), 2u);
}

TEST(RetryCall, ExhaustsBudgetAndReportsFailure) {
  int calls = 0;
  const RetryOutcome outcome = RetryCall(RetryPolicy{.max_attempts = 4}, [&] {
    ++calls;
    return false;
  });
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 4u);
  EXPECT_EQ(outcome.retries(), 3u);
  EXPECT_EQ(calls, 4);
}

TEST(RetryCall, ZeroAttemptsNeverInvokes) {
  int calls = 0;
  const RetryOutcome outcome = RetryCall(RetryPolicy{.max_attempts = 0}, [&] {
    ++calls;
    return true;
  });
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 0u);
  EXPECT_EQ(outcome.retries(), 0u);
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace cellspot::util
