#include "cellspot/analysis/export.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "cellspot/util/csv.hpp"
#include "cellspot/util/strings.hpp"

namespace cellspot::analysis {
namespace {

const Experiment& TinyExp() {
  static const Experiment exp = RunExperiment(simnet::WorldConfig::Tiny());
  return exp;
}

const dns::DnsSimulator& TinyDns() {
  static const dns::DnsSimulator sim(TinyExp().world);
  return sim;
}

std::vector<std::vector<std::string>> Rows(const std::string& text) {
  std::stringstream in(text);
  return util::ReadCsv(in);
}

TEST(ExportFig1, MonthsAndMonotoneTotals) {
  std::stringstream out;
  WriteFig1Csv(out);
  const auto rows = Rows(out.str());
  ASSERT_EQ(rows.size(), 23u);  // header + 22 months
  EXPECT_EQ(rows[0][0], "month");
  EXPECT_EQ(rows[1][0], "2015-09");
  EXPECT_EQ(rows.back()[0], "2017-06");
  const double first = *util::ParseDouble(rows[1][5]);
  const double last = *util::ParseDouble(rows.back()[5]);
  EXPECT_GT(last, first);
}

TEST(ExportFig2, SeriesCoverAllFour) {
  std::stringstream out;
  WriteFig2Csv(TinyExp(), out);
  const auto rows = Rows(out.str());
  ASSERT_GT(rows.size(), 10u);
  std::set<std::string> series;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    series.insert(rows[i][0]);
    const double f = *util::ParseDouble(rows[i][2]);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  EXPECT_TRUE(series.contains("v4_subnets"));
  EXPECT_TRUE(series.contains("v4_demand"));
}

TEST(ExportFig3, FiftyThresholdsPerCarrier) {
  std::stringstream out;
  WriteFig3Csv(TinyExp(), out);
  const auto rows = Rows(out.str());
  // header + 50 per present carrier (Tiny world has >= 2 carriers).
  EXPECT_GE(rows.size(), 1u + 100u);
  EXPECT_EQ((rows.size() - 1) % 50, 0u);
}

TEST(ExportFig5, OneRowPerKeptAs) {
  std::stringstream out;
  WriteFig5Csv(TinyExp(), out);
  const auto rows = Rows(out.str());
  EXPECT_EQ(rows.size(), 1u + TinyExp().filtered.kept.size());
}

TEST(ExportFig7, RanksAreSequential) {
  std::stringstream out;
  WriteFig7Csv(TinyExp(), out);
  const auto rows = Rows(out.str());
  ASSERT_GT(rows.size(), 5u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i][0], std::to_string(i));
  }
}

TEST(ExportFig10, SharesAreFractions) {
  std::stringstream out;
  WriteFig10Csv(TinyExp(), TinyDns(), out);
  const auto rows = Rows(out.str());
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const double total = *util::ParseDouble(rows[i][2]) +
                         *util::ParseDouble(rows[i][3]) +
                         *util::ParseDouble(rows[i][4]);
    EXPECT_GE(total, 0.0);
    EXPECT_LE(total, 1.0 + 1e-9);
  }
}

TEST(ExportCountry, RowsParseAndFractionsConsistent) {
  std::stringstream out;
  WriteCountryCsv(TinyExp(), out);
  const auto rows = Rows(out.str());
  ASSERT_GE(rows.size(), 6u);  // header + >= 5 countries (CN excluded in Tiny? 6 kept)
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const double cell = *util::ParseDouble(rows[i][2]);
    const double total = *util::ParseDouble(rows[i][3]);
    const double fraction = *util::ParseDouble(rows[i][4]);
    EXPECT_LE(cell, total + 1e-6);
    if (total > 0.0) {
      EXPECT_NEAR(fraction, cell / total, 1e-4);
    }
  }
}

TEST(ExportAll, WritesElevenFiles) {
  const std::string dir = ::testing::TempDir();
  const auto files = ExportAllFigures(TinyExp(), TinyDns(), dir);
  EXPECT_EQ(files.size(), 11u);
  for (const std::string& path : files) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::string header;
    std::getline(in, header);
    EXPECT_FALSE(header.empty()) << path;
  }
}

TEST(ExportAll, ThrowsOnBadDirectory) {
  EXPECT_THROW(ExportAllFigures(TinyExp(), TinyDns(), "/nonexistent/dir/xyz"),
               std::runtime_error);
}

}  // namespace
}  // namespace cellspot::analysis
