#include "cellspot/netaddr/ip_address.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "cellspot/util/error.hpp"

namespace cellspot::netaddr {
namespace {

TEST(Ipv4Parse, RoundTrip) {
  const auto a = IpAddress::Parse("192.0.2.1");
  EXPECT_TRUE(a.is_v4());
  EXPECT_EQ(a.ToString(), "192.0.2.1");
  EXPECT_EQ(a.v4_value(), 0xC0000201u);
}

TEST(Ipv4Parse, Extremes) {
  EXPECT_EQ(IpAddress::Parse("0.0.0.0").v4_value(), 0u);
  EXPECT_EQ(IpAddress::Parse("255.255.255.255").v4_value(), 0xFFFFFFFFu);
}

TEST(Ipv4Parse, RejectsMalformed) {
  for (const char* bad : {"1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.x",
                          "01.2.3.4", "", ".1.2.3", "1..2.3"}) {
    EXPECT_FALSE(IpAddress::TryParse(bad).has_value()) << bad;
  }
  EXPECT_THROW((void)IpAddress::Parse("999.0.0.1"), cellspot::ParseError);
}

TEST(Ipv6Parse, FullForm) {
  const auto a = IpAddress::Parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  EXPECT_TRUE(a.is_v6());
  EXPECT_EQ(a.ToString(), "2001:db8::1");
}

TEST(Ipv6Parse, CompressedForms) {
  EXPECT_EQ(IpAddress::Parse("::").ToString(), "::");
  EXPECT_EQ(IpAddress::Parse("::1").ToString(), "::1");
  EXPECT_EQ(IpAddress::Parse("2001:db8::").ToString(), "2001:db8::");
  EXPECT_EQ(IpAddress::Parse("fe80::1:2").ToString(), "fe80::1:2");
}

TEST(Ipv6Parse, RejectsMalformed) {
  for (const char* bad : {"2001:db8", ":::", "1:2:3:4:5:6:7:8:9",
                          "2001::db8::1", "12345::", "g::1"}) {
    EXPECT_FALSE(IpAddress::TryParse(bad).has_value()) << bad;
  }
}

TEST(Ipv6Format, CompressesLongestZeroRun) {
  const auto a = IpAddress::Parse("1:0:0:2:0:0:0:3");
  EXPECT_EQ(a.ToString(), "1:0:0:2::3");
}

TEST(Ipv6Format, NoCompressionOfSingleZero) {
  const auto a = IpAddress::Parse("1:0:2:3:4:5:6:7");
  EXPECT_EQ(a.ToString(), "1:0:2:3:4:5:6:7");
}

TEST(IpAddress, FamilySeparatesEquality) {
  const auto v4 = IpAddress::V4(0);
  const auto v6 = IpAddress::V6({});
  EXPECT_NE(v4, v6);
}

TEST(IpAddress, GetBitMsbFirst) {
  const auto a = IpAddress::V4(0x80000001u);
  EXPECT_TRUE(a.GetBit(0));
  EXPECT_FALSE(a.GetBit(1));
  EXPECT_FALSE(a.GetBit(30));
  EXPECT_TRUE(a.GetBit(31));
}

TEST(IpAddress, WithBitSetsAndClears) {
  auto a = IpAddress::V4(0);
  a = a.WithBit(0, true);
  EXPECT_EQ(a.v4_value(), 0x80000000u);
  a = a.WithBit(0, false);
  EXPECT_EQ(a.v4_value(), 0u);
  a = a.WithBit(31, true);
  EXPECT_EQ(a.v4_value(), 1u);
}

TEST(IpAddress, OrderingIsBytewise) {
  EXPECT_LT(IpAddress::Parse("10.0.0.1"), IpAddress::Parse("10.0.0.2"));
  EXPECT_LT(IpAddress::Parse("9.255.255.255"), IpAddress::Parse("10.0.0.0"));
}

TEST(IpAddress, HashUsableInSets) {
  std::unordered_set<IpAddress> set;
  set.insert(IpAddress::Parse("10.0.0.1"));
  set.insert(IpAddress::Parse("10.0.0.1"));
  set.insert(IpAddress::Parse("2001:db8::1"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(IpAddress, BitWidthPerFamily) {
  EXPECT_EQ(IpAddress::V4(0).bit_width(), 32);
  EXPECT_EQ(IpAddress::V6({}).bit_width(), 128);
}

}  // namespace
}  // namespace cellspot::netaddr
