#include "cellspot/asdb/serialization.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cellspot/simnet/world.hpp"
#include "cellspot/util/error.hpp"

namespace cellspot::asdb {
namespace {

AsDatabase SampleDb() {
  AsDatabase db;
  AsRecord a;
  a.asn = 64500;
  a.name = "EXAMPLE-CELL";
  a.country_iso = "US";
  a.continent = geo::Continent::kNorthAmerica;
  a.cls = AsClass::kTransitAccess;
  a.kind = OperatorKind::kDedicatedCellular;
  db.Upsert(a);
  AsRecord b;
  b.asn = 64501;
  b.name = "quoted, name";
  b.country_iso = "";
  b.continent = geo::Continent::kEurope;
  b.cls = AsClass::kContent;
  b.kind = OperatorKind::kMobileProxy;
  db.Upsert(b);
  return db;
}

TEST(AsDbCsv, RoundTrip) {
  const AsDatabase db = SampleDb();
  std::stringstream ss;
  SaveAsDatabaseCsv(db, ss);
  const AsDatabase loaded = LoadAsDatabaseCsv(ss);
  ASSERT_EQ(loaded.size(), 2u);
  const AsRecord* a = loaded.Find(64500);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name, "EXAMPLE-CELL");
  EXPECT_EQ(a->cls, AsClass::kTransitAccess);
  EXPECT_EQ(a->kind, OperatorKind::kDedicatedCellular);
  EXPECT_EQ(a->continent, geo::Continent::kNorthAmerica);
  const AsRecord* b = loaded.Find(64501);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->name, "quoted, name");  // CSV quoting survives
  EXPECT_EQ(b->kind, OperatorKind::kMobileProxy);
}

TEST(AsDbCsv, RejectsBadInput) {
  std::stringstream no_header("1,2,3\n");
  EXPECT_THROW(LoadAsDatabaseCsv(no_header), ParseError);
  std::stringstream bad_asn("asn,name,country,continent,class,kind\n0,x,US,NA,Content,Mixed\n");
  EXPECT_THROW(LoadAsDatabaseCsv(bad_asn), ParseError);
  std::stringstream bad_class("asn,name,country,continent,class,kind\n5,x,US,NA,Nope,Mixed\n");
  EXPECT_THROW(LoadAsDatabaseCsv(bad_class), ParseError);
  std::stringstream bad_cont("asn,name,country,continent,class,kind\n5,x,US,XX,Content,Mixed\n");
  EXPECT_THROW(LoadAsDatabaseCsv(bad_cont), ParseError);
}

TEST(RibCsv, RoundTrip) {
  AsDatabase db = SampleDb();
  RoutingTable rib;
  rib.Announce(netaddr::Prefix::Parse("198.51.101.0/24"), 64500);
  rib.Announce(netaddr::Prefix::Parse("2001:db8::/48"), 64500);
  rib.Announce(netaddr::Prefix::Parse("198.51.102.0/24"), 64501);
  std::stringstream ss;
  SaveRoutingTableCsv(rib, db, ss);
  const RoutingTable loaded = LoadRoutingTableCsv(ss);
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.OriginOf(netaddr::IpAddress::Parse("198.51.101.9")), 64500u);
  EXPECT_EQ(loaded.OriginOf(netaddr::IpAddress::Parse("2001:db8::1")), 64500u);
  EXPECT_EQ(loaded.OriginOf(netaddr::IpAddress::Parse("198.51.102.9")), 64501u);
}

TEST(RibCsv, RejectsBadInput) {
  std::stringstream bad_header("a,b\n");
  EXPECT_THROW(LoadRoutingTableCsv(bad_header), ParseError);
  std::stringstream bad_prefix("prefix,asn\nnot-a-prefix,5\n");
  EXPECT_THROW(LoadRoutingTableCsv(bad_prefix), ParseError);
  std::stringstream bad_asn("prefix,asn\n10.0.0.0/24,zero\n");
  EXPECT_THROW(LoadRoutingTableCsv(bad_asn), ParseError);
}

TEST(EnumNames, RoundTripAll) {
  for (AsClass c : {AsClass::kUnknown, AsClass::kEnterprise, AsClass::kContent,
                    AsClass::kTransitAccess}) {
    EXPECT_EQ(AsClassFromName(AsClassName(c)), c);
  }
  for (OperatorKind k :
       {OperatorKind::kDedicatedCellular, OperatorKind::kMixed, OperatorKind::kFixedOnly,
        OperatorKind::kCloudHosting, OperatorKind::kMobileProxy, OperatorKind::kTransit}) {
    EXPECT_EQ(OperatorKindFromName(OperatorKindName(k)), k);
  }
  EXPECT_FALSE(AsClassFromName("bogus").has_value());
  EXPECT_FALSE(OperatorKindFromName("bogus").has_value());
}

TEST(WorldExport, FullWorldRoundTrip) {
  // A generated world's AS database and RIB survive a CSV round trip
  // with origins intact — the CLI's generate/analyze contract.
  const simnet::World world = simnet::World::Generate(simnet::WorldConfig::Tiny());
  std::stringstream db_ss;
  std::stringstream rib_ss;
  SaveAsDatabaseCsv(world.as_db(), db_ss);
  SaveRoutingTableCsv(world.rib(), world.as_db(), rib_ss);
  const AsDatabase db = LoadAsDatabaseCsv(db_ss);
  const RoutingTable rib = LoadRoutingTableCsv(rib_ss);
  EXPECT_EQ(db.size(), world.as_db().size());
  EXPECT_EQ(rib.size(), world.rib().size());
  for (std::size_t i = 0; i < world.subnets().size(); i += 101) {
    const auto& s = world.subnets()[i];
    EXPECT_EQ(rib.OriginOf(netaddr::NthAddress(s.block, 1)), s.asn);
  }
}

}  // namespace
}  // namespace cellspot::asdb
