#include "cellspot/util/metrics.hpp"

#include <gtest/gtest.h>

namespace cellspot::util {
namespace {

TEST(ConfusionMatrix, EmptyIsAllZero) {
  ConfusionMatrix m;
  EXPECT_DOUBLE_EQ(m.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(m.F1(), 0.0);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(m.total(), 0.0);
}

TEST(ConfusionMatrix, QuadrantRouting) {
  ConfusionMatrix m;
  m.Add(true, true);    // tp
  m.Add(false, true);   // fp
  m.Add(false, false);  // tn
  m.Add(true, false);   // fn
  EXPECT_DOUBLE_EQ(m.tp(), 1.0);
  EXPECT_DOUBLE_EQ(m.fp(), 1.0);
  EXPECT_DOUBLE_EQ(m.tn(), 1.0);
  EXPECT_DOUBLE_EQ(m.fn(), 1.0);
  EXPECT_DOUBLE_EQ(m.Precision(), 0.5);
  EXPECT_DOUBLE_EQ(m.Recall(), 0.5);
  EXPECT_DOUBLE_EQ(m.F1(), 0.5);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 0.5);
}

TEST(ConfusionMatrix, PerfectClassifier) {
  ConfusionMatrix m;
  for (int i = 0; i < 10; ++i) m.Add(true, true);
  for (int i = 0; i < 90; ++i) m.Add(false, false);
  EXPECT_DOUBLE_EQ(m.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(m.F1(), 1.0);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 1.0);
}

TEST(ConfusionMatrix, WeightsActAsDemand) {
  // Mirrors Table 3: demand-weighted rows differ from count rows when the
  // misclassified items carry little traffic.
  ConfusionMatrix m;
  m.Add(true, true, 70.0);
  m.Add(true, false, 15.0);  // missed cellular, low demand
  m.Add(false, false, 1300.0);
  m.Add(false, true, 0.14);
  EXPECT_NEAR(m.Precision(), 70.0 / 70.14, 1e-9);
  EXPECT_NEAR(m.Recall(), 70.0 / 85.0, 1e-9);
  EXPECT_GT(m.F1(), 0.85);
}

TEST(ConfusionMatrix, PaperCarrierBShape) {
  // Carrier B (dedicated): 2937 TP, 0 FP, 0 TN, 35 FN -> P=1, R~0.99.
  ConfusionMatrix m;
  for (int i = 0; i < 2937; ++i) m.Add(true, true);
  for (int i = 0; i < 35; ++i) m.Add(true, false);
  EXPECT_DOUBLE_EQ(m.Precision(), 1.0);
  EXPECT_NEAR(m.Recall(), 0.988, 0.001);
  EXPECT_GT(m.F1(), 0.99);
}

TEST(ConfusionMatrix, RecallZeroWhenNoPositivesPredicted) {
  ConfusionMatrix m;
  m.Add(true, false);
  m.Add(false, false);
  EXPECT_DOUBLE_EQ(m.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(m.F1(), 0.0);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 0.5);
}

}  // namespace
}  // namespace cellspot::util
