// util::OrderedMutex: the runtime lock-order checker behind the static
// L008 rule. The death tests force checking on via SetLockOrderChecking
// so they exercise the registry in plain builds too (sanitizer builds
// have it on by default); each test starts from an empty graph so edges
// recorded by one test cannot convict orders in another.
#include "cellspot/util/ordered_mutex.hpp"

#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cellspot/stream/bounded_queue.hpp"

namespace {

using cellspot::util::LockOrderCheckingEnabled;
using cellspot::util::LockOrderEdgeCountForTest;
using cellspot::util::OrderedMutex;
using cellspot::util::ResetLockOrderGraphForTest;
using cellspot::util::SetLockOrderChecking;

class OrderedMutexTest : public testing::Test {
 protected:
  void SetUp() override {
    SetLockOrderChecking(true);
    ResetLockOrderGraphForTest();
  }
  void TearDown() override {
    ResetLockOrderGraphForTest();
    SetLockOrderChecking(false);
  }
};

TEST_F(OrderedMutexTest, NestedAcquisitionRecordsOneEdgePerClassPair) {
  OrderedMutex a("test.A");
  OrderedMutex b("test.B");
  EXPECT_EQ(LockOrderEdgeCountForTest(), 0U);
  {
    std::lock_guard<OrderedMutex> la(a);
    std::lock_guard<OrderedMutex> lb(b);
  }
  EXPECT_EQ(LockOrderEdgeCountForTest(), 1U);
  // The same order again is idempotent, not a second edge.
  {
    std::lock_guard<OrderedMutex> la(a);
    std::lock_guard<OrderedMutex> lb(b);
  }
  EXPECT_EQ(LockOrderEdgeCountForTest(), 1U);
}

TEST_F(OrderedMutexTest, ConsistentOrderAcrossThreeClassesIsFine) {
  OrderedMutex a("test.A");
  OrderedMutex b("test.B");
  OrderedMutex c("test.C");
  for (int round = 0; round < 3; ++round) {
    std::lock_guard<OrderedMutex> la(a);
    std::lock_guard<OrderedMutex> lb(b);
    std::lock_guard<OrderedMutex> lc(c);
  }
  // a->b, a->c, b->c.
  EXPECT_EQ(LockOrderEdgeCountForTest(), 3U);
}

TEST_F(OrderedMutexTest, UncheckedModeRecordsNothing) {
  SetLockOrderChecking(false);
  OrderedMutex a("test.A");
  OrderedMutex b("test.B");
  {
    std::lock_guard<OrderedMutex> la(a);
    std::lock_guard<OrderedMutex> lb(b);
  }
  EXPECT_EQ(LockOrderEdgeCountForTest(), 0U);
}

TEST_F(OrderedMutexTest, TryLockParticipatesInTheGraph) {
  OrderedMutex a("test.A");
  OrderedMutex b("test.B");
  std::lock_guard<OrderedMutex> la(a);
  ASSERT_TRUE(b.try_lock());
  b.unlock();
  EXPECT_EQ(LockOrderEdgeCountForTest(), 1U);
}

TEST_F(OrderedMutexTest, DeliberateInversionAbortsWithTheCycle) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // One thread, two locks, both orders: the checker must abort at the
  // second (inverted) acquisition even though nothing ever deadlocks.
  EXPECT_DEATH(
      {
        SetLockOrderChecking(true);
        ResetLockOrderGraphForTest();
        OrderedMutex a("test.A");
        OrderedMutex b("test.B");
        {
          std::lock_guard<OrderedMutex> la(a);
          std::lock_guard<OrderedMutex> lb(b);
        }
        {
          std::lock_guard<OrderedMutex> lb(b);
          std::lock_guard<OrderedMutex> la(a);
        }
      },
      "lock-order cycle");
}

TEST_F(OrderedMutexTest, SameClassNestingAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // Sibling instances of one class AB/BA between two threads is the
  // classic hang; the class-keyed graph flags any same-class nesting.
  EXPECT_DEATH(
      {
        SetLockOrderChecking(true);
        ResetLockOrderGraphForTest();
        OrderedMutex first("test.Sibling");
        OrderedMutex second("test.Sibling");
        std::lock_guard<OrderedMutex> lf(first);
        std::lock_guard<OrderedMutex> ls(second);
      },
      "lock-order cycle");
}

TEST_F(OrderedMutexTest, TransitiveInversionIsCaught) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // a->b and b->c recorded; acquiring a under c closes the loop two
  // hops out.
  EXPECT_DEATH(
      {
        SetLockOrderChecking(true);
        ResetLockOrderGraphForTest();
        OrderedMutex a("test.A");
        OrderedMutex b("test.B");
        OrderedMutex c("test.C");
        {
          std::lock_guard<OrderedMutex> la(a);
          std::lock_guard<OrderedMutex> lb(b);
        }
        {
          std::lock_guard<OrderedMutex> lb(b);
          std::lock_guard<OrderedMutex> lc(c);
        }
        {
          std::lock_guard<OrderedMutex> lc(c);
          std::lock_guard<OrderedMutex> la(a);
        }
      },
      "lock-order cycle");
}

TEST_F(OrderedMutexTest, AdoptingFrameQueueStillWorksUnderChecking) {
  // FrameQueue runs its whole API under an OrderedMutex (including the
  // shed path, which touches the obs counter registry on first use);
  // producer/consumer traffic with checking on must neither abort nor
  // change queue semantics.
  cellspot::stream::FrameQueue queue(2, cellspot::stream::BackpressurePolicy::kShedOldest);
  std::thread producer([&queue] {
    for (int i = 0; i < 16; ++i) queue.Push("frame-" + std::to_string(i));
    queue.Close();
  });
  std::vector<std::string> received;
  while (auto frame = queue.Pop()) received.push_back(*frame);
  producer.join();
  EXPECT_EQ(queue.pushed() - queue.shed_oldest(), received.size());
  EXPECT_TRUE(queue.closed());
}

TEST_F(OrderedMutexTest, CheckingFlagRoundTrips) {
  EXPECT_TRUE(LockOrderCheckingEnabled());
  SetLockOrderChecking(false);
  EXPECT_FALSE(LockOrderCheckingEnabled());
  SetLockOrderChecking(true);
  EXPECT_TRUE(LockOrderCheckingEnabled());
}

}  // namespace
