#include "cellspot/simnet/world.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "cellspot/simnet/block_allocator.hpp"

namespace cellspot::simnet {
namespace {

using asdb::OperatorKind;

const World& TinyWorld() {
  static const World world = World::Generate(WorldConfig::Tiny());
  return world;
}

TEST(BlockAllocatorTest, SkipsReservedSpace) {
  BlockAllocator alloc;
  for (int i = 0; i < 5000; ++i) {
    const auto p = alloc.NextV4Block();
    EXPECT_FALSE(IsReservedV4Block(p.address().v4_value())) << p.ToString();
    EXPECT_EQ(p.length(), 24);
  }
  EXPECT_EQ(alloc.v4_allocated(), 5000u);
}

TEST(BlockAllocatorTest, V4BlocksAreUnique) {
  BlockAllocator alloc;
  std::unordered_set<netaddr::Prefix> seen;
  for (int i = 0; i < 3000; ++i) EXPECT_TRUE(seen.insert(alloc.NextV4Block()).second);
}

TEST(BlockAllocatorTest, V6BlocksUniqueAndWellFormed) {
  BlockAllocator alloc;
  std::unordered_set<netaddr::Prefix> seen;
  for (int i = 0; i < 3000; ++i) {
    const auto p = alloc.NextV6Block();
    EXPECT_EQ(p.length(), 48);
    EXPECT_TRUE(p.family() == netaddr::Family::kIpv6);
    EXPECT_TRUE(seen.insert(p).second);
  }
}

TEST(ReservedV4, KnownRanges) {
  EXPECT_TRUE(IsReservedV4Block(0x0A000000));  // 10.0.0.0
  EXPECT_TRUE(IsReservedV4Block(0x7F000100));  // 127.0.1.0
  EXPECT_TRUE(IsReservedV4Block(0xC0A80500));  // 192.168.5.0
  EXPECT_TRUE(IsReservedV4Block(0xAC1F0000));  // 172.31.0.0
  EXPECT_TRUE(IsReservedV4Block(0xE0000000));  // 224.0.0.0
  EXPECT_FALSE(IsReservedV4Block(0x08080800));  // 8.8.8.0
  EXPECT_FALSE(IsReservedV4Block(0xCB007200));  // 203.0.114.0
}

TEST(World, GenerationIsDeterministic) {
  const World a = World::Generate(WorldConfig::Tiny());
  const World b = World::Generate(WorldConfig::Tiny());
  ASSERT_EQ(a.subnets().size(), b.subnets().size());
  ASSERT_EQ(a.operators().size(), b.operators().size());
  for (std::size_t i = 0; i < a.subnets().size(); i += 97) {
    EXPECT_EQ(a.subnets()[i].block, b.subnets()[i].block);
    EXPECT_EQ(a.subnets()[i].demand_du, b.subnets()[i].demand_du);
  }
}

TEST(World, BlocksAreUniqueAndIndexed) {
  const World& w = TinyWorld();
  std::unordered_set<netaddr::Prefix> seen;
  for (const Subnet& s : w.subnets()) {
    EXPECT_TRUE(seen.insert(s.block).second) << s.block.ToString();
    const Subnet* found = w.FindSubnet(s.block);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->asn, s.asn);
  }
}

TEST(World, RibAgreesWithSubnets) {
  const World& w = TinyWorld();
  std::size_t checked = 0;
  for (std::size_t i = 0; i < w.subnets().size(); i += 53) {
    const Subnet& s = w.subnets()[i];
    const auto origin = w.rib().OriginOf(netaddr::NthAddress(s.block, 1));
    ASSERT_TRUE(origin.has_value());
    EXPECT_EQ(*origin, s.asn);
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

TEST(World, OperatorRangesAreContiguousAndExhaustive) {
  const World& w = TinyWorld();
  std::size_t covered = 0;
  for (const OperatorInfo& op : w.operators()) {
    ASSERT_LE(op.subnet_begin, op.subnet_end);
    for (const Subnet& s : w.SubnetsOf(op)) {
      EXPECT_EQ(s.asn, op.asn);
      ++covered;
    }
  }
  EXPECT_EQ(covered, w.subnets().size());
}

TEST(World, EveryOperatorRegisteredInAsDb) {
  const World& w = TinyWorld();
  for (const OperatorInfo& op : w.operators()) {
    const auto* rec = w.as_db().Find(op.asn);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->kind, op.kind);
    EXPECT_FALSE(rec->name.empty());
  }
}

TEST(World, ValidationCarriersChosen) {
  const World& w = TinyWorld();
  const auto carriers = w.validation_carriers();
  ASSERT_GE(carriers.size(), 2u);  // Tiny world may lack a Middle-East mixed op
  std::set<char> labels;
  std::set<asdb::AsNumber> asns;
  for (const auto& c : carriers) {
    labels.insert(c.label);
    asns.insert(c.asn);
    const OperatorInfo* op = w.FindOperator(c.asn);
    ASSERT_NE(op, nullptr);
    EXPECT_EQ(op->validation_label, c.label);
  }
  EXPECT_EQ(labels.size(), carriers.size());  // distinct labels
  EXPECT_EQ(asns.size(), carriers.size());    // distinct operators
}

TEST(World, CellularDemandMatchesConfig) {
  const World& w = TinyWorld();
  double cell = 0.0;
  double total = 0.0;
  for (const Subnet& s : w.subnets()) {
    if (s.truth_cellular) cell += s.demand_du;
    total += s.demand_du;
  }
  const double expected_cell = w.config().TotalCellularDemand();
  // Stray pools add a little; v6 carving preserves totals.
  EXPECT_NEAR(cell / expected_cell, 1.0, 0.05);
  EXPECT_GT(total, cell);
}

TEST(World, CgnatConcentration) {
  // Within every sizable cellular operator, the top 10% of cellular
  // blocks must carry the overwhelming majority of cellular demand.
  const World& w = TinyWorld();
  int checked = 0;
  for (const OperatorInfo& op : w.operators()) {
    if (op.cell_demand_du < 50.0) continue;
    std::vector<double> demands;
    for (const Subnet& s : w.SubnetsOf(op)) {
      if (s.truth_cellular && s.block.family() == netaddr::Family::kIpv4 &&
          s.demand_du > 0.0) {
        demands.push_back(s.demand_du);
      }
    }
    if (demands.size() < 20) continue;
    std::sort(demands.begin(), demands.end(), std::greater<>());
    double top = 0.0;
    double total = 0.0;
    const std::size_t k = demands.size() / 10;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      total += demands[i];
      if (i < k) top += demands[i];
    }
    EXPECT_GT(top / total, 0.80) << op.country_iso;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(World, ProxyOperatorsExistAndTerminate) {
  const World& w = TinyWorld();
  int proxy_ops = 0;
  for (const OperatorInfo& op : w.operators()) {
    if (op.kind != OperatorKind::kMobileProxy) continue;
    ++proxy_ops;
    for (const Subnet& s : w.SubnetsOf(op)) {
      EXPECT_TRUE(s.proxy_terminating);
      EXPECT_FALSE(s.truth_cellular);
      EXPECT_GT(s.demand_du, 0.0);
    }
    const auto* rec = w.as_db().Find(op.asn);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->cls, asdb::AsClass::kContent);
  }
  EXPECT_EQ(proxy_ops, w.config().proxy_as_count);
}

TEST(World, CloudOperatorsMostlyBeaconSilent) {
  const World& w = TinyWorld();
  int cloud_ops = 0;
  for (const OperatorInfo& op : w.operators()) {
    if (op.kind != OperatorKind::kCloudHosting) continue;
    ++cloud_ops;
    int silent = 0;
    int egress = 0;
    for (const Subnet& s : w.SubnetsOf(op)) {
      if (s.beacon_scale == 0.0) ++silent;
      if (s.proxy_terminating) ++egress;
    }
    EXPECT_GT(silent, egress);
    EXPECT_GT(egress, 0);
  }
  EXPECT_EQ(cloud_ops, w.config().cloud_as_count);
}

TEST(World, InactiveCellularBlocksExist) {
  // Allocated-but-dormant cellular space drives Table 3's false
  // negatives; it must exist and carry no demand.
  const World& w = TinyWorld();
  int inactive = 0;
  for (const Subnet& s : w.subnets()) {
    if (s.truth_cellular && s.demand_du == 0.0) {
      ++inactive;
      EXPECT_EQ(s.beacon_scale, 0.0);
      EXPECT_FALSE(s.in_demand_snapshot);
    }
  }
  EXPECT_GT(inactive, 50);
}

TEST(World, CountryOfResolvesProfiles) {
  const World& w = TinyWorld();
  int with_country = 0;
  int infra = 0;
  for (const OperatorInfo& op : w.operators()) {
    for (const Subnet& s : w.SubnetsOf(op)) {
      const CountryProfile* p = w.CountryOf(s);
      if (p == nullptr) {
        ++infra;
      } else {
        ++with_country;
        EXPECT_EQ(p->iso2, op.country_iso);
      }
      break;  // one subnet per operator is enough
    }
  }
  EXPECT_GT(with_country, 0);
  EXPECT_GT(infra, 0);
}

TEST(World, TetherRatesWithinBounds) {
  const World& w = TinyWorld();
  for (const Subnet& s : w.subnets()) {
    if (s.truth_cellular && s.demand_du > 0.0 && s.tether_rate >= 0.0) {
      EXPECT_GE(s.tether_rate, 0.005);
      EXPECT_LE(s.tether_rate, 0.75);
    }
  }
}

TEST(World, MixedShareRoughlyHonoured) {
  const World& w = TinyWorld();
  int mixed = 0;
  int dedicated = 0;
  for (const OperatorInfo& op : w.operators()) {
    if (op.kind == OperatorKind::kMixed) ++mixed;
    if (op.kind == OperatorKind::kDedicatedCellular) ++dedicated;
  }
  EXPECT_GT(mixed, 0);
  EXPECT_GT(dedicated, 0);
}

}  // namespace
}  // namespace cellspot::simnet

namespace cellspot::simnet {
namespace {

TEST(World, TransitAggregatesDoNotStealOrigins) {
  // Backbone ASes announce /10 covers over access space; every block must
  // still resolve to its own origin through longest-prefix match, and
  // addresses outside any /24 but inside a transit cover resolve to the
  // transit AS.
  const World& w = TinyWorld();
  int transit_ops = 0;
  int with_announcements = 0;
  for (const OperatorInfo& op : w.operators()) {
    if (op.kind == asdb::OperatorKind::kTransit) {
      ++transit_ops;
      if (!w.rib().PrefixesOf(op.asn).empty()) ++with_announcements;
      EXPECT_EQ(op.subnet_begin, op.subnet_end);  // no eyeball blocks
    }
  }
  EXPECT_EQ(transit_ops, w.config().transit_as_count);
  // Colliding aggregates are re-announced by later backbones, so not
  // every transit AS keeps a route — but most must.
  EXPECT_GE(with_announcements * 2, transit_ops);
  for (std::size_t i = 0; i < w.subnets().size(); i += 97) {
    const Subnet& s = w.subnets()[i];
    EXPECT_EQ(w.rib().OriginOf(netaddr::NthAddress(s.block, 3)), s.asn);
  }
}

}  // namespace
}  // namespace cellspot::simnet
