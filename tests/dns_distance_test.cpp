#include "cellspot/dns/distance.hpp"

#include <gtest/gtest.h>

#include "cellspot/analysis/experiment.hpp"

namespace cellspot::dns {
namespace {

const analysis::Experiment& TinyExp() {
  static const analysis::Experiment exp =
      analysis::RunExperiment(simnet::WorldConfig::Tiny());
  return exp;
}

std::vector<asdb::AsNumber> MixedAses() {
  std::vector<asdb::AsNumber> out;
  for (const core::AsAggregate& as : TinyExp().filtered.kept) {
    if (!core::IsDedicated(as)) out.push_back(as.asn);
  }
  return out;
}

TEST(ResolverDistance, Deterministic) {
  const auto mixed = MixedAses();
  const auto a = AnalyzeResolverDistances(TinyExp().world, mixed);
  const auto b = AnalyzeResolverDistances(TinyExp().world, mixed);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].median_cell_km, b[i].median_cell_km);
  }
}

TEST(ResolverDistance, CellularClientsFarther) {
  const auto rows = AnalyzeResolverDistances(TinyExp().world, MixedAses());
  ASSERT_GT(rows.size(), 3u);
  int farther = 0;
  for (const OperatorDistance& row : rows) {
    EXPECT_GT(row.median_cell_km, 0.0);
    EXPECT_GT(row.median_fixed_km, 0.0);
    EXPECT_LT(row.median_cell_km, row.span_km * 1.2);
    if (row.median_cell_km > row.median_fixed_km) ++farther;
  }
  // Finding 4's shape: cellular clients resolve farther away in nearly
  // every mixed network.
  EXPECT_GT(static_cast<double>(farther) / rows.size(), 0.9);
}

TEST(ResolverDistance, ScalesWithCountrySize) {
  const auto rows = AnalyzeResolverDistances(TinyExp().world, MixedAses());
  double big_country = 0.0;
  double small_country = 1e18;
  for (const OperatorDistance& row : rows) {
    if (row.country_iso == "US" || row.country_iso == "IN" || row.country_iso == "BR") {
      big_country = std::max(big_country, row.median_cell_km);
    }
    if (row.country_iso == "DE" || row.country_iso == "GH") {
      small_country = std::min(small_country, row.median_cell_km);
    }
  }
  if (big_country > 0.0 && small_country < 1e18) {
    EXPECT_GT(big_country, small_country);
  }
}

TEST(ResolverDistance, UnknownAsnsIgnored) {
  const asdb::AsNumber bogus[] = {4294000000u};
  EXPECT_TRUE(AnalyzeResolverDistances(TinyExp().world, bogus).empty());
}

}  // namespace
}  // namespace cellspot::dns
