// Binary snapshot format: container/varint/CRC primitives, and the
// save -> load -> re-encode property for every serialized artifact. The
// load-bearing guarantee is byte identity: the encoded image is the
// same at any thread count, and a decoded artifact re-encodes (and
// re-exports) to exactly the bytes the original produced.
#include "cellspot/snapshot/serde.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "cellspot/asdb/serialization.hpp"
#include "cellspot/cdn/beacon_generator.hpp"
#include "cellspot/cdn/demand_generator.hpp"
#include "cellspot/core/classifier.hpp"
#include "cellspot/exec/executor.hpp"
#include "cellspot/snapshot/binary_io.hpp"
#include "cellspot/snapshot/snapshot.hpp"

namespace cellspot::snapshot {
namespace {

// ---- primitives ------------------------------------------------------------

TEST(Crc32, MatchesIeeeReferenceVector) {
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(ByteIo, RoundtripsEveryFieldType) {
  ByteWriter w;
  w.U8(0xAB);
  w.U16(0xBEEF);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.I32(-123456);
  w.Varint(0);
  w.Varint(127);
  w.Varint(128);
  w.Varint(0xFFFFFFFFFFFFFFFFull);
  w.F64(-2.5e-3);
  w.Bool(true);
  w.String("héllo");
  const std::string bytes = std::move(w).Take();

  ByteReader r(bytes);
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U16(), 0xBEEF);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I32(), -123456);
  EXPECT_EQ(r.Varint(), 0u);
  EXPECT_EQ(r.Varint(), 127u);
  EXPECT_EQ(r.Varint(), 128u);
  EXPECT_EQ(r.Varint(), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(r.F64(), -2.5e-3);
  EXPECT_TRUE(r.Bool());
  EXPECT_EQ(r.String(), "héllo");
  EXPECT_NO_THROW(r.ExpectEnd());
}

TEST(ByteIo, TruncatedReadThrowsTruncated) {
  ByteWriter w;
  w.U64(42);
  // Keep the truncated buffer alive: ByteReader views, it does not own.
  const std::string head = std::move(w).Take().substr(0, 3);
  ByteReader r(head);
  try {
    (void)r.U64();
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.reason(), SnapshotErrorReason::kTruncated);
  }
}

TEST(ByteIo, TrailingBytesThrowMalformed) {
  ByteReader r("abc");
  (void)r.U8();
  try {
    r.ExpectEnd();
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.reason(), SnapshotErrorReason::kMalformed);
  }
}

TEST(Container, RoundtripsSectionsThroughFile) {
  const std::vector<Section> sections = {{"alpha", "payload-1"},
                                         {"beta", std::string("\0\n\xff raw", 7)}};
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "container_roundtrip.snap";
  WriteSnapshotFile(path, sections);
  const std::vector<Section> loaded = ReadSnapshotFile(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].name, "alpha");
  EXPECT_EQ(loaded[0].payload, "payload-1");
  EXPECT_EQ(loaded[1].name, "beta");
  EXPECT_EQ(loaded[1].payload, sections[1].payload);
  EXPECT_EQ(FindSection(loaded, "beta").payload, sections[1].payload);
  EXPECT_THROW((void)FindSection(loaded, "gamma"), SnapshotError);
  std::filesystem::remove(path);
}

// ---- artifact roundtrips ---------------------------------------------------

struct Artifacts {
  simnet::World world;
  dataset::BeaconDataset beacons;
  dataset::DemandDataset demand;
  core::ClassifiedSubnets classified;
};

Artifacts Build(unsigned threads) {
  exec::Executor ex(threads);
  Artifacts a{simnet::World::Generate(simnet::WorldConfig::Tiny(), ex), {}, {}, {}};
  a.beacons = cdn::BeaconGenerator(a.world).GenerateDataset(ex);
  a.demand = cdn::DemandGenerator(a.world).GenerateDataset(ex);
  a.classified = core::SubnetClassifier(core::ClassifierConfig{}).Classify(a.beacons, ex);
  return a;
}

std::string WorldImage(const simnet::World& world) {
  return EncodeSnapshot(EncodeWorld(world));
}

class SnapshotRoundtrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(SnapshotRoundtrip, SaveLoadReencodeIsByteIdentical) {
  const Artifacts a = Build(GetParam());

  // World: decode, re-encode, compare the full container image.
  const std::string world_image = WorldImage(a.world);
  const simnet::World world2 = DecodeWorld(DecodeSnapshot(world_image));
  EXPECT_EQ(WorldImage(world2), world_image);

  // …and the decoded world re-exports the same CSVs.
  std::ostringstream asdb1, asdb2, rib1, rib2;
  asdb::SaveAsDatabaseCsv(a.world.as_db(), asdb1);
  asdb::SaveAsDatabaseCsv(world2.as_db(), asdb2);
  EXPECT_EQ(asdb2.str(), asdb1.str());
  asdb::SaveRoutingTableCsv(a.world.rib(), a.world.as_db(), rib1);
  asdb::SaveRoutingTableCsv(world2.rib(), world2.as_db(), rib2);
  EXPECT_EQ(rib2.str(), rib1.str());

  // Datasets: re-encode and re-export byte-identically.
  const std::string ds_image = EncodeSnapshot(EncodeDatasets(a.beacons, a.demand));
  auto [beacons2, demand2] = DecodeDatasets(DecodeSnapshot(ds_image));
  EXPECT_EQ(EncodeSnapshot(EncodeDatasets(beacons2, demand2)), ds_image);
  std::ostringstream bea1, bea2, dem1, dem2;
  a.beacons.SaveCsv(bea1);
  beacons2.SaveCsv(bea2);
  EXPECT_EQ(bea2.str(), bea1.str());
  a.demand.SaveCsv(dem1);
  demand2.SaveCsv(dem2);
  EXPECT_EQ(dem2.str(), dem1.str());
  EXPECT_EQ(demand2.total(), a.demand.total());

  // Classification output.
  const std::string cls_image = EncodeSnapshot(EncodeClassified(a.classified));
  const core::ClassifiedSubnets classified2 = DecodeClassified(DecodeSnapshot(cls_image));
  EXPECT_EQ(EncodeSnapshot(EncodeClassified(classified2)), cls_image);
  EXPECT_EQ(classified2.ratios(), a.classified.ratios());
  EXPECT_EQ(classified2.cellular(), a.classified.cellular());

  // Config alone roundtrips through its canonical encoding.
  const std::string cfg = EncodeWorldConfig(a.world.config());
  EXPECT_EQ(EncodeWorldConfig(DecodeWorldConfig(cfg)), cfg);
}

INSTANTIATE_TEST_SUITE_P(Threads, SnapshotRoundtrip, ::testing::Values(1u, 2u, 8u));

TEST(SnapshotRoundtrip, ImageIsIdenticalAtAnyThreadCount) {
  const Artifacts a1 = Build(1);
  const Artifacts a8 = Build(8);
  EXPECT_EQ(WorldImage(a8.world), WorldImage(a1.world));
  EXPECT_EQ(EncodeSnapshot(EncodeDatasets(a8.beacons, a8.demand)),
            EncodeSnapshot(EncodeDatasets(a1.beacons, a1.demand)));
  EXPECT_EQ(EncodeSnapshot(EncodeClassified(a8.classified)),
            EncodeSnapshot(EncodeClassified(a1.classified)));
}

}  // namespace
}  // namespace cellspot::snapshot
