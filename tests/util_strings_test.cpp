#include "cellspot/util/strings.hpp"

#include <gtest/gtest.h>

namespace cellspot::util {
namespace {

TEST(Split, KeepsEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, SingleFieldNoDelim) {
  const auto parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Split, TrailingDelimYieldsEmptyTail) {
  const auto parts = Split("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(Split, EmptyInput) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(Trim("  abc \t"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ParseUint, ValidAndInvalid) {
  EXPECT_EQ(ParseUint("123"), 123u);
  EXPECT_EQ(ParseUint(" 42 "), 42u);
  EXPECT_EQ(ParseUint("0"), 0u);
  EXPECT_FALSE(ParseUint("").has_value());
  EXPECT_FALSE(ParseUint("-1").has_value());
  EXPECT_FALSE(ParseUint("12x").has_value());
  EXPECT_FALSE(ParseUint("99999999999999999999999").has_value());
}

TEST(ParseDouble, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(ParseDouble("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2").value(), -2.0);
  EXPECT_DOUBLE_EQ(ParseDouble("1e3").value(), 1000.0);
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.5junk").has_value());
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(FormatPercent, MatchesPaperStyle) {
  EXPECT_EQ(FormatPercent(0.162, 1), "16.2%");
  EXPECT_EQ(FormatPercent(0.959, 1), "95.9%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(FormatWithCommas, Grouping) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(350687), "350,687");
  EXPECT_EQ(FormatWithCommas(1234567890), "1,234,567,890");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(StartsWith("google-proxy-1.google.com", "google-proxy"));
  EXPECT_FALSE(StartsWith("abc", "abcd"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(ToLower, Ascii) {
  EXPECT_EQ(ToLower("CeLLuLar"), "cellular");
  EXPECT_EQ(ToLower("WIFI-5"), "wifi-5");
}

}  // namespace
}  // namespace cellspot::util
