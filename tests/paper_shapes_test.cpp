// Integration regression net: the headline shapes of the paper must
// re-emerge from a mid-scale world (0.02 of paper scale ≈ 130k observed
// blocks). These are deliberately loose bands — they pin the *shape* of
// every major claim so calibration regressions fail loudly, while leaving
// room for seed and scale noise.
#include <gtest/gtest.h>

#include "cellspot/analysis/reports.hpp"

namespace cellspot::analysis {
namespace {

const Experiment& PaperExp() {
  static const Experiment exp = RunExperiment(simnet::WorldConfig::Paper(0.02));
  return exp;
}

TEST(PaperShapes, GlobalCellularShareNear16Percent) {
  double cell = 0.0;
  double total = 0.0;
  for (const CountryDemand& cd : CountryDemandReport(PaperExp())) {
    if (cd.excluded) continue;
    cell += cd.cell_du;
    total += cd.total_du;
  }
  EXPECT_NEAR(cell / total, 0.162, 0.025);  // paper: 16.2%
}

TEST(PaperShapes, FilterFunnelHalvesCandidates) {
  const auto& f = PaperExp().filtered;
  // Paper: 1,263 -> 668 (47% excluded); rule 1 dominates.
  const double excluded =
      static_cast<double>(f.input_count - f.kept.size()) / f.input_count;
  EXPECT_NEAR(excluded, 0.47, 0.08);
  EXPECT_GT(f.removed_low_demand, f.removed_low_hits);
  EXPECT_GT(f.removed_low_demand, f.removed_class);
}

TEST(PaperShapes, MixedMajorityButDemandMinority) {
  const auto r = MixedOperatorReport(PaperExp());
  const double mixed_share =
      static_cast<double>(r.mixed_count) / (r.mixed_count + r.dedicated_count);
  EXPECT_NEAR(mixed_share, 0.586, 0.08);              // paper: 58.6%
  EXPECT_NEAR(r.mixed_share_of_cell_demand, 0.327, 0.09);  // paper: 32.7%
}

TEST(PaperShapes, RatioDistributionBimodal) {
  const auto r = RatioCdfReport(PaperExp());
  EXPECT_NEAR(r.v4_subnets.At(0.0999), 0.913, 0.035);      // paper: 91.3%
  EXPECT_NEAR(1.0 - r.v4_subnets.At(0.9), 0.058, 0.025);   // paper: 5.8%
  EXPECT_NEAR(r.v4_demand.At(0.0999), 0.80, 0.06);         // paper: 80%
}

TEST(PaperShapes, TopTenAsesHoldMoreThanAThird) {
  const auto ranked = RankAsesByCellDemand(PaperExp());
  ASSERT_GE(ranked.size(), 10u);
  double top10 = 0.0;
  for (int i = 0; i < 10; ++i) top10 += ranked[i].share_of_global_cell;
  EXPECT_NEAR(top10, 0.38, 0.06);  // paper: 38%
  // Top ranks dominated by the U.S.; top carriers dedicated.
  EXPECT_EQ(ranked[0].country_iso, "US");
  EXPECT_FALSE(ranked[0].mixed);
  EXPECT_FALSE(ranked[1].mixed);
}

TEST(PaperShapes, UsDominatesCountryDemand) {
  auto countries = CountryDemandReport(PaperExp());
  std::erase_if(countries, [](const CountryDemand& cd) { return cd.excluded; });
  double global_cell = 0.0;
  const CountryDemand* us = nullptr;
  for (const auto& cd : countries) {
    global_cell += cd.cell_du;
    if (cd.iso == "US") us = &cd;
  }
  ASSERT_NE(us, nullptr);
  EXPECT_NEAR(us->cell_du / global_cell, 0.30, 0.05);  // paper: >30%
  EXPECT_NEAR(us->CellFraction(), 0.166, 0.05);        // paper: 16.6%
}

TEST(PaperShapes, CellularPrimaryCountries) {
  for (const CountryDemand& cd : CountryDemandReport(PaperExp())) {
    if (cd.iso == "GH") {
      EXPECT_GT(cd.CellFraction(), 0.8);  // paper: 95.9%
    }
    if (cd.iso == "LA") {
      EXPECT_GT(cd.CellFraction(), 0.75);  // paper: 87.1%
    }
    if (cd.iso == "ID") {
      EXPECT_NEAR(cd.CellFraction(), 0.63, 0.1);
    }
    if (cd.iso == "FR") {
      EXPECT_LT(cd.CellFraction(), 0.2);  // paper: 12.1%
    }
  }
}

TEST(PaperShapes, ContinentOrderingHolds) {
  const auto rows = ContinentDemandReport(PaperExp());
  double af = 0, as = 0, eu = 0, na = 0;
  double as_share = 0, na_share = 0, af_share = 0;
  for (const auto& row : rows) {
    switch (row.continent) {
      case geo::Continent::kAfrica: af = row.cell_fraction; af_share = row.share_of_global_cell; break;
      case geo::Continent::kAsia: as = row.cell_fraction; as_share = row.share_of_global_cell; break;
      case geo::Continent::kEurope: eu = row.cell_fraction; break;
      case geo::Continent::kNorthAmerica: na = row.cell_fraction; na_share = row.share_of_global_cell; break;
      default: break;
    }
  }
  // Fractions: Africa/Asia cellular-heavy, Europe lowest (Table 8).
  EXPECT_GT(af, eu);
  EXPECT_GT(as, eu);
  EXPECT_GT(na, eu);
  // Global shares: Asia and North America dominate, Africa tiny.
  EXPECT_GT(as_share, 0.3);
  EXPECT_GT(na_share, 0.25);
  EXPECT_LT(af_share, 0.08);
}

TEST(PaperShapes, CarrierValidationStructure) {
  const Experiment& e = PaperExp();
  const simnet::OperatorInfo* a = FindCarrier(e, 'A');
  const simnet::OperatorInfo* b = FindCarrier(e, 'B');
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  const auto va = core::Validate(BuildCarrierTruth(e.world, a->asn, "A"),
                                 e.classified, e.demand);
  const auto vb = core::Validate(BuildCarrierTruth(e.world, b->asn, "B"),
                                 e.classified, e.demand);
  // A: precision high, CIDR recall tiny (dormant space), demand recall ~0.8.
  EXPECT_GT(va.by_cidr.Precision(), 0.85);
  EXPECT_LT(va.by_cidr.Recall(), 0.25);
  EXPECT_NEAR(va.by_demand.Recall(), 0.82, 0.1);
  // B: near-perfect on both axes.
  EXPECT_GT(vb.by_cidr.Precision(), 0.97);
  EXPECT_GT(vb.by_cidr.Recall(), 0.9);
  EXPECT_GT(vb.by_demand.Recall(), 0.93);
}

TEST(PaperShapes, Ipv6SparseAndNorthAmerican) {
  const Experiment& e = PaperExp();
  std::size_t v6_ases = 0;
  for (const core::AsAggregate& as : e.filtered.kept) {
    if (as.cell_blocks_v6 >= 2) ++v6_ases;
  }
  // Paper: 52 of 668 (7.7%).
  EXPECT_NEAR(static_cast<double>(v6_ases) / e.filtered.kept.size(), 0.077, 0.04);

  const auto rows = ContinentSubnetReport(e);
  const auto& na = rows[static_cast<std::size_t>(geo::Continent::kNorthAmerica)];
  EXPECT_NEAR(na.pct_active_v6, 0.099, 0.04);  // paper: 9.9%
  std::size_t total_v6 = 0;
  for (const auto& row : rows) total_v6 += row.cell_v6;
  EXPECT_GT(na.cell_v6 * 2, total_v6);  // NA holds the majority of v6 cellular
}

}  // namespace
}  // namespace cellspot::analysis
