#include <gtest/gtest.h>

#include <sstream>

#include "cellspot/dataset/beacon_dataset.hpp"
#include "cellspot/dataset/demand_dataset.hpp"

namespace cellspot::dataset {
namespace {

using netaddr::Family;
using netaddr::Prefix;

TEST(BeaconBlockStats, RatioHandlesZero) {
  BeaconBlockStats s;
  EXPECT_DOUBLE_EQ(s.CellularRatio(), 0.0);
  s.netinfo_hits = 10;
  s.cellular_labels = 9;
  s.hits = 20;
  EXPECT_DOUBLE_EQ(s.CellularRatio(), 0.9);
}

TEST(BeaconDataset, AddAccumulates) {
  BeaconDataset d;
  const auto block = Prefix::Parse("203.0.114.0/24");
  d.Add(block, {.hits = 10, .netinfo_hits = 4, .cellular_labels = 3, .wifi_labels = 1});
  d.Add(block, {.hits = 5, .netinfo_hits = 2, .cellular_labels = 1, .wifi_labels = 1});
  const auto* s = d.Find(block);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->hits, 15u);
  EXPECT_EQ(s->netinfo_hits, 6u);
  EXPECT_EQ(s->cellular_labels, 4u);
  EXPECT_EQ(d.block_count(), 1u);
  EXPECT_EQ(d.total_hits(), 15u);
  EXPECT_EQ(d.total_netinfo_hits(), 6u);
}

TEST(BeaconDataset, RejectsNonBlocks) {
  BeaconDataset d;
  EXPECT_THROW(d.Add(Prefix::Parse("10.0.0.0/16"), {.hits = 1}), std::invalid_argument);
  EXPECT_THROW(d.Add(Prefix::Parse("2001:db8::/32"), {.hits = 1}), std::invalid_argument);
}

TEST(BeaconDataset, RejectsInconsistentStats) {
  BeaconDataset d;
  const auto block = Prefix::Parse("203.0.114.0/24");
  EXPECT_THROW(d.Add(block, {.hits = 1, .netinfo_hits = 2}), std::invalid_argument);
  EXPECT_THROW(d.Add(block, {.hits = 5, .netinfo_hits = 2, .cellular_labels = 3}),
               std::invalid_argument);
}

TEST(BeaconDataset, FamilyCounts) {
  BeaconDataset d;
  d.Add(Prefix::Parse("203.0.114.0/24"), {.hits = 1});
  d.Add(Prefix::Parse("203.0.115.0/24"), {.hits = 1});
  d.Add(Prefix::Parse("2001:db8:1::/48"), {.hits = 1});
  EXPECT_EQ(d.block_count(Family::kIpv4), 2u);
  EXPECT_EQ(d.block_count(Family::kIpv6), 1u);
}

TEST(BeaconDataset, CsvRoundTrip) {
  BeaconDataset d;
  d.Add(Prefix::Parse("198.51.101.0/24"),
        {.hits = 100, .netinfo_hits = 13, .cellular_labels = 11, .wifi_labels = 2});
  d.Add(Prefix::Parse("2001:db8:7::/48"),
        {.hits = 7, .netinfo_hits = 1, .wifi_labels = 1});
  std::stringstream ss;
  d.SaveCsv(ss);
  const BeaconDataset loaded = BeaconDataset::LoadCsv(ss);
  EXPECT_EQ(loaded.block_count(), 2u);
  const auto* s = loaded.Find(Prefix::Parse("198.51.101.0/24"));
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->cellular_labels, 11u);
  EXPECT_EQ(loaded.total_hits(), d.total_hits());
}

TEST(DemandDataset, AddAndNormalize) {
  DemandDataset d;
  d.Add(Prefix::Parse("198.51.101.0/24"), 30.0);
  d.Add(Prefix::Parse("198.51.102.0/24"), 10.0);
  EXPECT_DOUBLE_EQ(d.total(), 40.0);
  d.Normalize();
  EXPECT_DOUBLE_EQ(d.total(), kTotalDemandUnits);
  EXPECT_DOUBLE_EQ(d.DemandOf(Prefix::Parse("198.51.101.0/24")), 75000.0);
  EXPECT_DOUBLE_EQ(d.DemandOf(Prefix::Parse("198.51.102.0/24")), 25000.0);
  EXPECT_DOUBLE_EQ(d.DemandOf(Prefix::Parse("198.51.103.0/24")), 0.0);
}

TEST(DemandDataset, NormalizeEmptyIsNoop) {
  DemandDataset d;
  d.Normalize();
  EXPECT_DOUBLE_EQ(d.total(), 0.0);
}

TEST(DemandDataset, RejectsBadInput) {
  DemandDataset d;
  EXPECT_THROW(d.Add(Prefix::Parse("10.0.0.0/8"), 1.0), std::invalid_argument);
  EXPECT_THROW(d.Add(Prefix::Parse("198.51.101.0/24"), -1.0), std::invalid_argument);
}

TEST(DemandDataset, AccumulatesSameBlock) {
  DemandDataset d;
  const auto block = Prefix::Parse("198.51.101.0/24");
  d.Add(block, 1.0);
  d.Add(block, 2.5);
  EXPECT_DOUBLE_EQ(d.DemandOf(block), 3.5);
  EXPECT_EQ(d.block_count(), 1u);
}

TEST(DemandDataset, CsvRoundTrip) {
  DemandDataset d;
  d.Add(Prefix::Parse("198.51.101.0/24"), 12.25);
  d.Add(Prefix::Parse("2001:db8:9::/48"), 0.001);
  std::stringstream ss;
  d.SaveCsv(ss);
  const DemandDataset loaded = DemandDataset::LoadCsv(ss);
  EXPECT_EQ(loaded.block_count(), 2u);
  EXPECT_NEAR(loaded.DemandOf(Prefix::Parse("198.51.101.0/24")), 12.25, 1e-6);
  EXPECT_NEAR(loaded.DemandOf(Prefix::Parse("2001:db8:9::/48")), 0.001, 1e-9);
}

}  // namespace
}  // namespace cellspot::dataset

namespace cellspot::dataset {
namespace {

TEST(BeaconDatasetMerge, ShardsCombineAssociatively) {
  const auto block_a = netaddr::Prefix::Parse("198.51.101.0/24");
  const auto block_b = netaddr::Prefix::Parse("198.51.102.0/24");
  BeaconDataset shard1;
  shard1.Add(block_a, {.hits = 10, .netinfo_hits = 2, .cellular_labels = 2});
  BeaconDataset shard2;
  shard2.Add(block_a, {.hits = 5, .netinfo_hits = 1, .wifi_labels = 1});
  shard2.Add(block_b, {.hits = 7});

  BeaconDataset merged;
  merged.Merge(shard1);
  merged.Merge(shard2);
  EXPECT_EQ(merged.block_count(), 2u);
  EXPECT_EQ(merged.total_hits(), 22u);
  const auto* a = merged.Find(block_a);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->hits, 15u);
  EXPECT_EQ(a->netinfo_hits, 3u);
  EXPECT_EQ(a->cellular_labels, 2u);
}

TEST(DemandDatasetMerge, SumsRawDemand) {
  const auto block = netaddr::Prefix::Parse("198.51.101.0/24");
  DemandDataset a;
  a.Add(block, 3.0);
  DemandDataset b;
  b.Add(block, 5.0);
  b.Add(netaddr::Prefix::Parse("2001:db8::/48"), 2.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.DemandOf(block), 8.0);
  EXPECT_DOUBLE_EQ(a.total(), 10.0);
  EXPECT_EQ(a.block_count(), 2u);
}

}  // namespace
}  // namespace cellspot::dataset
