// Corruption tolerance of the stage cache: truncated files, bit-flipped
// headers and payloads, stale format versions, and StreamCorruptor
// damage must each (a) fail the load with the right
// snapshot.miss.<reason> counter, (b) quarantine the file in place as
// *.corrupt, and (c) leave the pipeline able to regenerate — never a
// crash, never silently wrong data.
#include "cellspot/snapshot/stage_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "cellspot/faultsim/stream_corruptor.hpp"
#include "cellspot/obs/metrics.hpp"
#include "cellspot/snapshot/serde.hpp"
#include "cellspot/snapshot/snapshot.hpp"

namespace cellspot::snapshot {
namespace {

namespace fs = std::filesystem;

std::uint64_t CounterValue(std::string_view name) {
  for (const auto& c : obs::MetricsRegistry::Global().Snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::string ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFileBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class CorruptionMatrix : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::Global().ResetForTest();
    dir_ = fs::path(::testing::TempDir()) /
           ("snapcorrupt_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    config_ = simnet::WorldConfig::Tiny();
    world_ = simnet::World::Generate(config_);
    cache_.emplace(dir_);
    ASSERT_TRUE(cache_->enabled());
    cache_->StoreWorld(world_);
    path_ = cache_->WorldPath(config_);
    ASSERT_TRUE(fs::exists(path_));
    clean_bytes_ = ReadFileBytes(path_);
  }

  /// Asserts the mutated file misses with `reason`, is quarantined, and
  /// that regenerating + re-storing recovers an identical snapshot.
  void ExpectRejectedThenRecovers(std::string_view reason) {
    const std::uint64_t hits_before = CounterValue("snapshot.hit");
    auto loaded = cache_->TryLoadWorld(config_);
    EXPECT_FALSE(loaded.has_value());
    EXPECT_EQ(CounterValue("snapshot.hit"), hits_before);
    EXPECT_EQ(CounterValue("snapshot.miss"), 1u);
    EXPECT_EQ(CounterValue("snapshot.miss." + std::string(reason)), 1u)
        << "expected reason " << reason;
    EXPECT_FALSE(fs::exists(path_)) << "corrupt file must not stay in place";
    EXPECT_TRUE(fs::exists(path_.string() + ".corrupt"))
        << "corrupt file must be quarantined for diagnosis";

    // Fallback: regenerate, store, and the warm path works again with
    // the exact same bytes as the original save.
    cache_->StoreWorld(world_);
    EXPECT_EQ(ReadFileBytes(path_), clean_bytes_);
    auto reloaded = cache_->TryLoadWorld(config_);
    ASSERT_TRUE(reloaded.has_value());
    EXPECT_EQ(EncodeSnapshot(EncodeWorld(*reloaded)),
              EncodeSnapshot(EncodeWorld(world_)));
  }

  fs::path dir_;
  fs::path path_;
  simnet::WorldConfig config_;
  simnet::World world_;
  std::optional<StageCache> cache_;
  std::string clean_bytes_;
};

TEST_F(CorruptionMatrix, TruncatedFileFallsBack) {
  WriteFileBytes(path_, clean_bytes_.substr(0, clean_bytes_.size() / 2));
  ExpectRejectedThenRecovers("truncated");
}

TEST_F(CorruptionMatrix, HeaderBitFlipFallsBack) {
  std::string bytes = clean_bytes_;
  bytes[0] ^= 0x01;  // first magic byte
  WriteFileBytes(path_, bytes);
  ExpectRejectedThenRecovers("bad-magic");
}

TEST_F(CorruptionMatrix, PayloadBitFlipFailsCrcAndFallsBack) {
  std::string bytes = clean_bytes_;
  bytes.back() ^= 0x40;  // last byte of the final section's payload
  WriteFileBytes(path_, bytes);
  ExpectRejectedThenRecovers("checksum");
}

TEST_F(CorruptionMatrix, StaleFormatVersionFallsBack) {
  std::string bytes = clean_bytes_;
  bytes[4] = static_cast<char>(kSnapshotFormatVersion + 1);  // u32 LE version field
  WriteFileBytes(path_, bytes);
  ExpectRejectedThenRecovers("version-mismatch");
}

TEST_F(CorruptionMatrix, StreamCorruptorDamageNeverCrashesOrLies) {
  // Line-oriented corruption over the binary image: whatever it breaks,
  // the load must reject (the odds of surviving per-section CRC32 are
  // negligible) and quarantine.
  std::istringstream in(clean_bytes_);
  std::ostringstream out;
  faultsim::StreamCorruptor corruptor(faultsim::FaultMix::Destructive(0.8), 1234);
  const auto stats = corruptor.Corrupt(in, out);
  ASSERT_GT(stats.total_faults(), 0u);
  ASSERT_NE(out.str(), clean_bytes_);
  WriteFileBytes(path_, out.str());

  auto loaded = cache_->TryLoadWorld(config_);
  EXPECT_FALSE(loaded.has_value());
  EXPECT_EQ(CounterValue("snapshot.miss"), 1u);
  EXPECT_TRUE(fs::exists(path_.string() + ".corrupt"));

  cache_->StoreWorld(world_);
  auto reloaded = cache_->TryLoadWorld(config_);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(EncodeSnapshot(EncodeWorld(*reloaded)), EncodeSnapshot(EncodeWorld(world_)));
}

TEST_F(CorruptionMatrix, AbsentFileIsAQuietMiss) {
  fs::remove(path_);
  auto loaded = cache_->TryLoadWorld(config_);
  EXPECT_FALSE(loaded.has_value());
  EXPECT_EQ(CounterValue("snapshot.miss"), 1u);
  EXPECT_EQ(CounterValue("snapshot.miss.absent"), 1u);
  EXPECT_FALSE(fs::exists(path_.string() + ".corrupt"));
}

TEST(StageCacheSetup, UnwritableDirectoryDisablesCacheInsteadOfThrowing) {
  StageCache cache("/dev/null/not-a-directory");
  EXPECT_FALSE(cache.enabled());
  const auto config = simnet::WorldConfig::Tiny();
  EXPECT_FALSE(cache.TryLoadWorld(config).has_value());
}

}  // namespace
}  // namespace cellspot::snapshot
