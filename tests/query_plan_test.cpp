// Expression-syntax parsers: --where / --agg / --order-by text into the
// typed plan structs, with column/type resolution errors surfaced as
// categorized QueryErrors.
#include "cellspot/query/plan.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cellspot::query {
namespace {

Table SampleTable() {
  TableBuilder b;
  const std::size_t u = b.AddColumn("u", ColumnType::kU64);
  const std::size_t f = b.AddColumn("f", ColumnType::kF64);
  const std::size_t s = b.AddColumn("s", ColumnType::kStr);
  b.AppendU64(u, 1);
  b.AppendF64(f, 0.5);
  b.AppendStr(s, "DE");
  return b.Finish();
}

template <typename Fn>
QueryErrorCode CodeOf(Fn fn) {
  try {
    fn();
  } catch (const QueryError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected QueryError";
  return QueryErrorCode::kBadPlan;
}

TEST(ParseFilter, EachOperator) {
  const Table t = SampleTable();
  struct Case {
    const char* expr;
    CompareOp op;
  };
  for (const Case& c : std::vector<Case>{{"u=5", CompareOp::kEq},
                                         {"u!=5", CompareOp::kNe},
                                         {"u<5", CompareOp::kLt},
                                         {"u<=5", CompareOp::kLe},
                                         {"u>5", CompareOp::kGt},
                                         {"u>=5", CompareOp::kGe}}) {
    const Filter f = ParseFilterExpr(c.expr, t);
    EXPECT_EQ(f.op, c.op) << c.expr;
    EXPECT_EQ(f.column, "u");
    EXPECT_EQ(f.value.type, ColumnType::kU64);
    EXPECT_EQ(f.value.u64, 5u);
  }
}

TEST(ParseFilter, LiteralTypedByColumn) {
  const Table t = SampleTable();
  const Filter f = ParseFilterExpr("f>=0.25", t);
  EXPECT_EQ(f.value.type, ColumnType::kF64);
  EXPECT_DOUBLE_EQ(f.value.f64, 0.25);

  const Filter s = ParseFilterExpr("s!=DE", t);
  EXPECT_EQ(s.op, CompareOp::kNe);
  EXPECT_EQ(s.value.type, ColumnType::kStr);
  EXPECT_EQ(s.value.str, "DE");

  // Empty string literal is legal for str columns ("country!=" keeps
  // only rows with a resolved country).
  const Filter empty = ParseFilterExpr("s!=", t);
  EXPECT_EQ(empty.value.str, "");
}

TEST(ParseFilter, TrimsWhitespace) {
  const Table t = SampleTable();
  const Filter f = ParseFilterExpr("  u  <=  10 ", t);
  EXPECT_EQ(f.column, "u");
  EXPECT_EQ(f.op, CompareOp::kLe);
  EXPECT_EQ(f.value.u64, 10u);
}

TEST(ParseFilter, Errors) {
  const Table t = SampleTable();
  EXPECT_EQ(CodeOf([&] { (void)ParseFilterExpr("u", t); }),
            QueryErrorCode::kBadExpression);
  EXPECT_EQ(CodeOf([&] { (void)ParseFilterExpr("=5", t); }),
            QueryErrorCode::kBadExpression);
  EXPECT_EQ(CodeOf([&] { (void)ParseFilterExpr("nope=1", t); }),
            QueryErrorCode::kUnknownColumn);
  EXPECT_EQ(CodeOf([&] { (void)ParseFilterExpr("u=abc", t); }),
            QueryErrorCode::kTypeMismatch);
  EXPECT_EQ(CodeOf([&] { (void)ParseFilterExpr("f=1e", t); }),
            QueryErrorCode::kTypeMismatch);
  // Ordering comparisons are meaningless on dictionary-coded strings.
  EXPECT_EQ(CodeOf([&] { (void)ParseFilterExpr("s<x", t); }),
            QueryErrorCode::kTypeMismatch);
}

TEST(ParseAggregate, Kinds) {
  const Table t = SampleTable();
  EXPECT_EQ(ParseAggregateExpr("count()", t).kind, AggKind::kCount);
  const Aggregate sum = ParseAggregateExpr("sum(f)", t);
  EXPECT_EQ(sum.kind, AggKind::kSum);
  EXPECT_EQ(sum.column, "f");
  EXPECT_EQ(sum.OutputName(), "sum(f)");
  EXPECT_EQ(ParseAggregateExpr("mean(u)", t).kind, AggKind::kMean);
  EXPECT_EQ(ParseAggregateExpr("min(f)", t).kind, AggKind::kMin);
  EXPECT_EQ(ParseAggregateExpr("max(u)", t).kind, AggKind::kMax);
  const Aggregate q = ParseAggregateExpr("quantile(f,0.9)", t);
  EXPECT_EQ(q.kind, AggKind::kQuantile);
  EXPECT_DOUBLE_EQ(q.q, 0.9);
  EXPECT_EQ(q.OutputName(), "quantile(f,0.90)");
}

TEST(ParseAggregate, Errors) {
  const Table t = SampleTable();
  EXPECT_EQ(CodeOf([&] { (void)ParseAggregateExpr("sum", t); }),
            QueryErrorCode::kBadExpression);
  EXPECT_EQ(CodeOf([&] { (void)ParseAggregateExpr("sum()", t); }),
            QueryErrorCode::kBadExpression);
  EXPECT_EQ(CodeOf([&] { (void)ParseAggregateExpr("sum(f,1)", t); }),
            QueryErrorCode::kBadExpression);
  EXPECT_EQ(CodeOf([&] { (void)ParseAggregateExpr("count(f)", t); }),
            QueryErrorCode::kBadExpression);
  EXPECT_EQ(CodeOf([&] { (void)ParseAggregateExpr("frob(f)", t); }),
            QueryErrorCode::kBadExpression);
  EXPECT_EQ(CodeOf([&] { (void)ParseAggregateExpr("quantile(f)", t); }),
            QueryErrorCode::kBadExpression);
  EXPECT_EQ(CodeOf([&] { (void)ParseAggregateExpr("quantile(f,1.5)", t); }),
            QueryErrorCode::kBadExpression);
  EXPECT_EQ(CodeOf([&] { (void)ParseAggregateExpr("quantile(f,0)", t); }),
            QueryErrorCode::kBadExpression);
  EXPECT_EQ(CodeOf([&] { (void)ParseAggregateExpr("sum(nope)", t); }),
            QueryErrorCode::kUnknownColumn);
  EXPECT_EQ(CodeOf([&] { (void)ParseAggregateExpr("sum(s)", t); }),
            QueryErrorCode::kTypeMismatch);
}

TEST(ParseOrderBy, Directions) {
  EXPECT_FALSE(ParseOrderByExpr("c").descending);
  EXPECT_FALSE(ParseOrderByExpr("c:asc").descending);
  EXPECT_TRUE(ParseOrderByExpr("c:desc").descending);
  EXPECT_EQ(ParseOrderByExpr(" c : desc ").column, "c");
  EXPECT_EQ(CodeOf([] { (void)ParseOrderByExpr("c:up"); }),
            QueryErrorCode::kBadExpression);
  EXPECT_EQ(CodeOf([] { (void)ParseOrderByExpr(":desc"); }),
            QueryErrorCode::kBadExpression);
  EXPECT_EQ(CodeOf([] { (void)ParseOrderByExpr(""); }),
            QueryErrorCode::kBadExpression);
}

TEST(SplitTopLevelFn, RespectsParens) {
  const auto fields = SplitTopLevel("sum(a),quantile(b,0.5), count() ", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "sum(a)");
  EXPECT_EQ(fields[1], "quantile(b,0.5)");
  EXPECT_EQ(fields[2], "count()");
}

TEST(SplitTopLevelFn, DropsEmptyFieldsAndTrims) {
  const auto fields = SplitTopLevel(" a , b ,, ", ',');
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_TRUE(SplitTopLevel("", ',').empty());
}

}  // namespace
}  // namespace cellspot::query
