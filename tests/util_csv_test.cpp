#include "cellspot/util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cellspot/util/error.hpp"

namespace cellspot::util {
namespace {

TEST(ParseCsvLine, PlainFields) {
  const auto fields = ParseCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(ParseCsvLine, QuotedFieldWithComma) {
  const auto fields = ParseCsvLine(R"(one,"two, three",four)");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "two, three");
}

TEST(ParseCsvLine, EscapedQuote) {
  const auto fields = ParseCsvLine(R"("say ""hi""")");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(ParseCsvLine, UnterminatedQuoteThrows) {
  EXPECT_THROW(ParseCsvLine(R"("oops)"), cellspot::ParseError);
}

TEST(ParseCsvLine, EmptyLineIsOneEmptyField) {
  const auto fields = ParseCsvLine("");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(EscapeCsvField, OnlyWhenNeeded) {
  EXPECT_EQ(EscapeCsvField("plain"), "plain");
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(EscapeCsvField(" lead"), "\" lead\"");
}

TEST(RoundTrip, JoinThenParse) {
  const std::vector<std::string> fields{"a", "b,c", "d\"e", ""};
  const auto parsed = ParseCsvLine(JoinCsvLine(fields));
  EXPECT_EQ(parsed, fields);
}

TEST(CsvWriterAndReader, RoundTripThroughStream) {
  std::stringstream ss;
  CsvWriter writer(ss);
  writer.WriteRow({"prefix", "ratio"});
  writer.WriteRow({"203.0.113.0/24", "0.93"});
  const auto rows = ReadCsv(ss);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "203.0.113.0/24");
  EXPECT_EQ(rows[1][1], "0.93");
}

TEST(ReadCsv, SkipsBlankAndHandlesCrlf) {
  std::stringstream ss("a,b\r\n\r\nc,d\n");
  const auto rows = ReadCsv(ss);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b");
  EXPECT_EQ(rows[1][0], "c");
}

}  // namespace
}  // namespace cellspot::util
