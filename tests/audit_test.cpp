// Drives cellspot-audit's whole-tree passes over the layering fixture
// trees (tests/lint_fixtures/layering/*): the include-cycle detector,
// the declared-DAG back-edge check (quoted and angled spellings), the
// L007 waiver path, and the baseline gate + SARIF output that ride on
// the driver. The per-file rules have their own fixtures in lint_test.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "cellspot/obs/json.hpp"

namespace {

using cellspot::obs::JsonValue;

#ifndef CELLSPOT_LINT_BIN
#error "CELLSPOT_LINT_BIN must point at the cellspot-audit binary"
#endif
#ifndef CELLSPOT_LINT_FIXTURES
#error "CELLSPOT_LINT_FIXTURES must point at tests/lint_fixtures"
#endif

std::string Tree(const std::string& name) {
  return std::string(CELLSPOT_LINT_FIXTURES) + "/layering/" + name;
}

std::string TempPath(const std::string& tag) {
  return testing::TempDir() + "/audit_" + tag + "_" + std::to_string(::getpid());
}

struct AuditRun {
  int exit_code = -1;
  std::string json_text;
};

/// Audit the layering tree `name` with its own layers.txt; `extra` is
/// spliced into the command line.
AuditRun RunAudit(const std::string& name, const std::string& extra = "") {
  const std::string json_path = TempPath(name + ".json");
  const std::string root = Tree(name);
  const std::string cmd = std::string(CELLSPOT_LINT_BIN) + " --quiet --root '" +
                          root + "' --layers '" + root + "/layers.txt' " + extra +
                          " --json '" + json_path + "'";
  const int status = std::system(cmd.c_str());
  AuditRun run;
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream in(json_path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  run.json_text = buf.str();
  std::remove(json_path.c_str());
  return run;
}

/// First finding with the given rule, or nullptr.
const JsonValue* FirstFinding(const JsonValue& doc, const std::string& rule) {
  for (const JsonValue& f : doc.Find("findings")->as_array()) {
    if (f.Find("rule")->as_string() == rule) return &f;
  }
  return nullptr;
}

TEST(AuditLayering, IncludeCycleIsReportedWithItsChain) {
  const AuditRun run = RunAudit("cycle");
  EXPECT_EQ(run.exit_code, 1);
  const JsonValue doc = JsonValue::Parse(run.json_text);
  const JsonValue* f = FirstFinding(doc, "L007");
  ASSERT_NE(f, nullptr) << run.json_text;
  const std::string msg = f->Find("message")->as_string();
  EXPECT_NE(msg.find("include cycle"), std::string::npos) << msg;
  // The chain names both headers and returns to its starting point.
  EXPECT_NE(msg.find("a.hpp"), std::string::npos) << msg;
  EXPECT_NE(msg.find("b.hpp"), std::string::npos) << msg;
}

TEST(AuditLayering, BackEdgeAgainstDeclaredDagGates) {
  const AuditRun run = RunAudit("backedge");
  EXPECT_EQ(run.exit_code, 1);
  const JsonValue doc = JsonValue::Parse(run.json_text);
  const JsonValue* f = FirstFinding(doc, "L007");
  ASSERT_NE(f, nullptr) << run.json_text;
  EXPECT_EQ(f->Find("file")->as_string(), "src/netaddr/lookup.cpp");
  EXPECT_NE(f->Find("message")->as_string().find("netaddr -> exec"),
            std::string::npos);
}

TEST(AuditLayering, AngledCellspotIncludeStillCountsQuietStdDoesNot) {
  const AuditRun run = RunAudit("quoted");
  EXPECT_EQ(run.exit_code, 1);
  const JsonValue doc = JsonValue::Parse(run.json_text);
  ASSERT_EQ(doc.Find("findings")->as_array().size(), 1U) << run.json_text;
  const JsonValue& f = doc.Find("findings")->as_array().front();
  EXPECT_EQ(f.Find("rule")->as_string(), "L007");
  // The geo edge fires despite its <> spelling; <vector> and the
  // allowed util include contribute nothing.
  EXPECT_NE(f.Find("message")->as_string().find("core -> geo"),
            std::string::npos);
}

TEST(AuditLayering, WaivedBackEdgePassesAndConsumesTheWaiver) {
  const AuditRun run = RunAudit("waived");
  EXPECT_EQ(run.exit_code, 0) << run.json_text;
  const JsonValue doc = JsonValue::Parse(run.json_text);
  EXPECT_TRUE(doc.Find("clean")->as_bool());
  const auto& waivers = doc.Find("waivers")->as_array();
  ASSERT_EQ(waivers.size(), 1U);
  EXPECT_EQ(waivers.front().Find("rule")->as_string(), "L007");
  EXPECT_TRUE(waivers.front().Find("used")->as_bool())
      << "an L007 waiver that suppressed a back-edge must read as used";
}

TEST(AuditBaseline, UpdateThenGateRoundTrips) {
  const std::string baseline = TempPath("baseline.json");
  // Bless the back-edge...
  const AuditRun update =
      RunAudit("backedge", "--baseline '" + baseline + "' --update-baseline");
  EXPECT_EQ(update.exit_code, 0);
  // ...after which the same tree gates green and reports the
  // suppression count.
  const AuditRun gated = RunAudit("backedge", "--baseline '" + baseline + "'");
  EXPECT_EQ(gated.exit_code, 0) << gated.json_text;
  const JsonValue doc = JsonValue::Parse(gated.json_text);
  EXPECT_TRUE(doc.Find("clean")->as_bool());
  EXPECT_EQ(doc.Find("baseline_suppressed")->as_number(), 1.0);
  std::remove(baseline.c_str());
}

TEST(AuditBaseline, EmptyBaselineStillGates) {
  const std::string baseline = TempPath("empty_baseline.json");
  {
    std::ofstream out(baseline);
    out << "{\"schema\": \"cellspot-audit-baseline/1\", \"entries\": []}\n";
  }
  const AuditRun run = RunAudit("backedge", "--baseline '" + baseline + "'");
  EXPECT_EQ(run.exit_code, 1)
      << "an empty baseline must not suppress anything";
  std::remove(baseline.c_str());
}

TEST(AuditBaseline, UnreadableBaselineIsAConfigurationError) {
  const AuditRun run =
      RunAudit("backedge", "--baseline '/nonexistent/baseline.json'");
  EXPECT_EQ(run.exit_code, 2);
}

TEST(AuditSarif, EmitsParseableSarifWithRuleIds) {
  const std::string sarif_path = TempPath("findings.sarif");
  const AuditRun run = RunAudit("backedge", "--sarif '" + sarif_path + "'");
  EXPECT_EQ(run.exit_code, 1);
  std::ifstream in(sarif_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const JsonValue doc = JsonValue::Parse(buf.str());
  EXPECT_EQ(doc.Find("version")->as_string(), "2.1.0");
  const JsonValue& sole = doc.Find("runs")->as_array().front();
  EXPECT_EQ(sole.Find("tool")->Find("driver")->Find("name")->as_string(),
            "cellspot-audit");
  const auto& results = sole.Find("results")->as_array();
  ASSERT_EQ(results.size(), 1U);
  EXPECT_EQ(results.front().Find("ruleId")->as_string(), "L007");
  const JsonValue& loc = results.front().Find("locations")->as_array().front();
  EXPECT_EQ(loc.Find("physicalLocation")
                ->Find("artifactLocation")
                ->Find("uri")
                ->as_string(),
            "src/netaddr/lookup.cpp");
  std::remove(sarif_path.c_str());
}

TEST(AuditLayering, BrokenLayersDeclarationIsAConfigurationError) {
  // A declared cycle in layers.txt must exit 2 (broken contract), not
  // report findings against it.
  const std::string layers = TempPath("cyclic_layers.txt");
  {
    std::ofstream out(layers);
    out << "core: util\nutil: core\n";
  }
  const std::string cmd = std::string(CELLSPOT_LINT_BIN) + " --quiet --root '" +
                          Tree("backedge") + "' --layers '" + layers + "'";
  const int status = std::system(cmd.c_str());
  EXPECT_EQ(WIFEXITED(status) ? WEXITSTATUS(status) : -1, 2);
  std::remove(layers.c_str());
}

}  // namespace
