#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

#include "cellspot/evolution/stability.hpp"
#include "cellspot/util/error.hpp"

namespace cellspot::evolution {
namespace {

const simnet::World& TinyWorld() {
  static const simnet::World world = simnet::World::Generate(simnet::WorldConfig::Tiny());
  return world;
}

TEST(ChurnConfig, Validation) {
  ChurnConfig ok;
  EXPECT_NO_THROW(ok.Validate());

  ChurnConfig bad = ok;
  bad.cell_retire_rate = 1.5;
  EXPECT_THROW(bad.Validate(), ConfigError);

  bad = ok;
  bad.demand_drift_sigma = -0.1;
  EXPECT_THROW(bad.Validate(), ConfigError);

  bad = ok;
  bad.cellular_growth = 0.9;
  EXPECT_THROW(bad.Validate(), ConfigError);
}

TEST(TemporalSimulator, MonthZeroMatchesBase) {
  TemporalSimulator sim(TinyWorld());
  EXPECT_EQ(sim.month(), 0);
  ASSERT_EQ(sim.subnets().size(), TinyWorld().subnets().size());
  for (std::size_t i = 0; i < sim.subnets().size(); i += 71) {
    EXPECT_EQ(sim.subnets()[i].block, TinyWorld().subnets()[i].block);
    EXPECT_EQ(sim.subnets()[i].demand_du, TinyWorld().subnets()[i].demand_du);
  }
}

TEST(TemporalSimulator, Deterministic) {
  TemporalSimulator a(TinyWorld());
  TemporalSimulator b(TinyWorld());
  for (int m = 0; m < 3; ++m) {
    a.AdvanceMonth();
    b.AdvanceMonth();
  }
  for (std::size_t i = 0; i < a.subnets().size(); i += 53) {
    EXPECT_EQ(a.subnets()[i].demand_du, b.subnets()[i].demand_du) << i;
    EXPECT_EQ(a.subnets()[i].truth_cellular, b.subnets()[i].truth_cellular) << i;
  }
  EXPECT_EQ(a.GenerateBeacons().total_hits(), b.GenerateBeacons().total_hits());
}

TEST(TemporalSimulator, CellularDemandGrows) {
  ChurnConfig churn;
  churn.cellular_growth = 0.03;
  TemporalSimulator sim(TinyWorld(), churn);
  const double base_cell = sim.CellularDemand();
  const double base_fixed = sim.FixedDemand();
  for (int m = 0; m < 6; ++m) sim.AdvanceMonth();
  // Six months of 3% growth => ~1.19x; the multiplicative drift has a
  // slightly positive mean (E[e^X] > 1), so allow generous headroom.
  EXPECT_GT(sim.CellularDemand(), base_cell * 1.08);
  EXPECT_LT(sim.CellularDemand(), base_cell * 1.6);
  // Fixed demand only drifts.
  EXPECT_NEAR(sim.FixedDemand() / base_fixed, 1.0, 0.12);
}

TEST(TemporalSimulator, BlocksRotate) {
  TemporalSimulator sim(TinyWorld());
  auto active_cellular = [&]() {
    std::unordered_set<std::string> out;
    for (const simnet::Subnet& s : sim.subnets()) {
      if (s.truth_cellular && s.demand_du > 0.0) out.insert(s.block.ToString());
    }
    return out;
  };
  const auto before = active_cellular();
  for (int m = 0; m < 4; ++m) sim.AdvanceMonth();
  const auto after = active_cellular();
  std::size_t lost = 0;
  for (const auto& block : before) {
    if (!after.contains(block)) ++lost;
  }
  std::size_t gained = 0;
  for (const auto& block : after) {
    if (!before.contains(block)) ++gained;
  }
  // 4 months at ~4%/month retirement: a visible but minority rotation.
  EXPECT_GT(lost, before.size() / 50);
  EXPECT_LT(lost, before.size() / 2);
  EXPECT_GT(gained, 0u);
}

TEST(TemporalSimulator, ReassignmentFlipsTechnology) {
  ChurnConfig churn;
  churn.reassign_rate = 0.2;  // exaggerate to observe reliably
  TemporalSimulator sim(TinyWorld(), churn);
  std::size_t flips = 0;
  sim.AdvanceMonth();
  const auto base = TinyWorld().subnets();
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (base[i].demand_du > 0.0 &&
        base[i].truth_cellular != sim.subnets()[i].truth_cellular) {
      ++flips;
    }
  }
  EXPECT_GT(flips, 50u);
}

TEST(AnalyzeStability, BaseMonthRow) {
  const auto rows = AnalyzeStability(TinyWorld(), {}, 0);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].month, 0);
  EXPECT_GT(rows[0].detected, 10u);
  EXPECT_DOUBLE_EQ(rows[0].jaccard_vs_base, 1.0);
  EXPECT_DOUBLE_EQ(rows[0].demand_overlap_vs_base, 1.0);
}

TEST(AnalyzeStability, RejectsNegativeMonths) {
  EXPECT_THROW(AnalyzeStability(TinyWorld(), {}, -1), std::invalid_argument);
}

TEST(AnalyzeStability, MapDecaysGraduallyButDemandOverlapStaysHigh) {
  const auto rows = AnalyzeStability(TinyWorld(), {}, 6);
  ASSERT_EQ(rows.size(), 7u);
  // Set similarity decays monotonically-ish against the base month...
  EXPECT_LT(rows[6].jaccard_vs_base, rows[1].jaccard_vs_base + 0.02);
  EXPECT_GT(rows[6].jaccard_vs_base, 0.3);
  // ...but the demand-weighted overlap stays much higher: heavy CGNAT
  // gateways are stable, rotation happens in the tail. This is the
  // actionable finding for a map consumer.
  for (const MonthStability& row : rows) {
    if (row.month == 0) continue;
    EXPECT_GT(row.demand_overlap_vs_base, row.jaccard_vs_base) << row.month;
  }
  EXPECT_GT(rows[6].demand_overlap_vs_base, 0.7);
}

TEST(AnalyzeStability, JoinLeaveAccounting) {
  const auto rows = AnalyzeStability(TinyWorld(), {}, 3);
  for (std::size_t m = 1; m < rows.size(); ++m) {
    // detected_m = detected_{m-1} + joined - left
    EXPECT_EQ(rows[m].detected,
              rows[m - 1].detected + rows[m].joined - rows[m].left);
  }
}

}  // namespace
}  // namespace cellspot::evolution
