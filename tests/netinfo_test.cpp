#include <gtest/gtest.h>

#include "cellspot/netinfo/availability.hpp"
#include "cellspot/netinfo/connection.hpp"
#include "cellspot/netinfo/noise.hpp"
#include "cellspot/util/rng.hpp"

namespace cellspot::netinfo {
namespace {

TEST(ConnectionType, NamesRoundTrip) {
  for (std::uint8_t i = 0; i < kConnectionTypeCount; ++i) {
    const auto t = static_cast<ConnectionType>(i);
    EXPECT_EQ(ConnectionTypeFromName(ConnectionTypeName(t)), t);
  }
  EXPECT_FALSE(ConnectionTypeFromName("5g").has_value());
}

TEST(Browser, NamesRoundTrip) {
  for (std::uint8_t i = 0; i < kBrowserCount; ++i) {
    const auto b = static_cast<Browser>(i);
    EXPECT_EQ(BrowserFromName(BrowserName(b)), b);
  }
  EXPECT_FALSE(BrowserFromName("netscape").has_value());
}

TEST(Browser, MobileAndGoogleFlags) {
  EXPECT_TRUE(IsMobileBrowser(Browser::kChromeMobile));
  EXPECT_TRUE(IsMobileBrowser(Browser::kSafariMobile));
  EXPECT_FALSE(IsMobileBrowser(Browser::kDesktopOther));
  EXPECT_TRUE(IsGoogleBrowser(Browser::kChromeDesktop));
  EXPECT_FALSE(IsGoogleBrowser(Browser::kFirefoxMobile));
}

TEST(BrowserShares, SumToOneAcrossWindow) {
  for (int offset = 0; offset <= 21; offset += 3) {
    const auto mix = BrowserSharesAt(kTimelineStart.Plus(offset));
    double total = 0.0;
    for (double s : mix.share) total += s;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(BrowserShares, ChromeMobileGrowsWebkitShrinks) {
  const auto early = BrowserSharesAt(kTimelineStart);
  const auto late = BrowserSharesAt(kTimelineEnd);
  EXPECT_GT(late.of(Browser::kChromeMobile), early.of(Browser::kChromeMobile));
  EXPECT_LT(late.of(Browser::kAndroidWebkit), early.of(Browser::kAndroidWebkit));
}

TEST(BrowserShares, ClampsOutsideWindow) {
  const auto before = BrowserSharesAt({2014, 1});
  const auto at_start = BrowserSharesAt(kTimelineStart);
  EXPECT_DOUBLE_EQ(before.of(Browser::kChromeMobile), at_start.of(Browser::kChromeMobile));
}

TEST(NetInfoFraction, MatchesPaperDec2016) {
  // The paper measures 13.2% of beacon hits with Network Information API
  // data in Dec 2016 and ~15% by Jun 2017.
  EXPECT_NEAR(NetInfoFraction({2016, 12}), 0.132, 0.01);
  EXPECT_NEAR(NetInfoFraction({2017, 6}), 0.152, 0.012);
  EXPECT_LT(NetInfoFraction({2015, 9}), NetInfoFraction({2016, 12}));
}

TEST(NetInfoFraction, GoogleBrowsersDominate) {
  // 96.7% of API-enabled hits came from Google browsers in Dec 2016.
  const util::YearMonth m{2016, 12};
  double google = 0.0;
  double total = 0.0;
  for (Browser b : AllBrowsers()) {
    const double f = NetInfoFractionOf(b, m);
    total += f;
    if (IsGoogleBrowser(b)) google += f;
  }
  EXPECT_GT(total, 0.0);
  EXPECT_NEAR(google / total, 0.967, 0.02);
}

TEST(NetInfoAvailability, SafariNeverDesktopLate) {
  EXPECT_DOUBLE_EQ(NetInfoAvailability(Browser::kSafariMobile, {2016, 12}), 0.0);
  EXPECT_DOUBLE_EQ(NetInfoAvailability(Browser::kChromeDesktop, {2016, 12}), 0.0);
  EXPECT_GT(NetInfoAvailability(Browser::kChromeDesktop, {2017, 4}), 0.0);
  EXPECT_DOUBLE_EQ(NetInfoAvailability(Browser::kChromeMobile, {2014, 9}), 0.0);
  EXPECT_DOUBLE_EQ(NetInfoAvailability(Browser::kChromeMobile, {2014, 10}), 1.0);
}

TEST(LabelNoise, CellularObservationsMostlyCellular) {
  LabelNoiseModel model;
  util::Rng rng(3);
  int cellular = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (model.ObserveCellular(rng) == ConnectionType::kCellular) ++cellular;
  }
  EXPECT_NEAR(static_cast<double>(cellular) / n,
              model.ExpectedCellularLabelFraction(true), 0.01);
}

TEST(LabelNoise, TetherOverrideRaisesWifi) {
  LabelNoiseModel model;
  util::Rng rng(5);
  int wifi = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (model.ObserveCellular(rng, 0.5) == ConnectionType::kWifi) ++wifi;
  }
  EXPECT_NEAR(static_cast<double>(wifi) / n, 0.5, 0.02);
}

TEST(LabelNoise, FixedObservationsRarelyCellular) {
  LabelNoiseModel model;
  util::Rng rng(7);
  int cellular = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (model.ObserveFixed(rng) == ConnectionType::kCellular) ++cellular;
  }
  const double rate = static_cast<double>(cellular) / n;
  EXPECT_NEAR(rate, model.switch_cellular_given_fixed, 0.003);
  EXPECT_LT(rate, 0.02);
}

TEST(LabelNoise, ExpectedFractionAsymmetry) {
  // The paper's key observation: cellular labels carry high confidence
  // (few false positives) while wifi labels do not.
  LabelNoiseModel model;
  EXPECT_GT(model.ExpectedCellularLabelFraction(true), 0.8);
  EXPECT_LT(model.ExpectedCellularLabelFraction(false), 0.01);
}

TEST(LabelNoise, ExoticLabelsAreRare) {
  LabelNoiseModel model;
  util::Rng rng(11);
  int exotic = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto t = model.ObserveFixed(rng);
    if (t == ConnectionType::kBluetooth || t == ConnectionType::kWimax) ++exotic;
  }
  EXPECT_LT(static_cast<double>(exotic) / n, 0.01);
}

}  // namespace
}  // namespace cellspot::netinfo
