#include "cellspot/stream/daemon.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>

#include "cellspot/cdn/event_stream.hpp"
#include "cellspot/obs/metrics.hpp"
#include "cellspot/simnet/world.hpp"
#include "cellspot/snapshot/serde.hpp"
#include "cellspot/snapshot/snapshot.hpp"
#include "cellspot/stream/event.hpp"

namespace cellspot::stream {
namespace {

namespace fs = std::filesystem;

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

const simnet::World& TinyWorld() {
  static const simnet::World world =
      simnet::World::Generate(simnet::WorldConfig::Tiny());
  return world;
}

std::string BeaconFrame(std::uint32_t subnet, std::uint32_t seq, std::uint64_t netinfo,
                        std::uint64_t cellular) {
  StreamEvent e;
  e.kind = EventKind::kBeacon;
  e.subnet = subnet;
  e.seq = seq;
  e.stats.hits = netinfo * 2;
  e.stats.netinfo_hits = netinfo;
  e.stats.cellular_labels = cellular;
  e.stats.wifi_labels = netinfo - cellular;
  e.stats.mobile_browser_hits = netinfo;
  return EncodeEventFrame(e);
}

std::string DemandFrame(std::uint32_t subnet, std::uint32_t seq, double raw) {
  StreamEvent e;
  e.kind = EventKind::kDemand;
  e.subnet = subnet;
  e.seq = seq;
  e.demand_raw = raw;
  return EncodeEventFrame(e);
}

std::string ClassifiedBytes(const StreamDaemon& daemon) {
  return snapshot::EncodeSnapshot(snapshot::EncodeClassified(daemon.ExportClassified()));
}

TEST(StreamDaemon, AppliesBeaconAndReclassifiesIncrementally) {
  StreamDaemon daemon(TinyWorld(), {}, {});
  const netaddr::Prefix block = TinyWorld().subnets()[0].block;

  daemon.queue().Push(BeaconFrame(0, 1, /*netinfo=*/10, /*cellular=*/9));
  EXPECT_EQ(daemon.Tick(), 1u);
  EXPECT_EQ(daemon.stats().applied, 1u);
  EXPECT_EQ(daemon.liveness(0), SubnetLiveness::kActive);
  EXPECT_TRUE(daemon.ExportClassified().IsCellular(block));

  // A later cumulative restatement flips the verdict the moment it lands.
  daemon.queue().Push(BeaconFrame(0, 2, /*netinfo=*/100, /*cellular=*/10));
  EXPECT_EQ(daemon.Tick(), 1u);
  const core::ClassifiedSubnets classified = daemon.ExportClassified();
  EXPECT_FALSE(classified.IsCellular(block));
  const double* ratio = classified.RatioOf(block);
  ASSERT_NE(ratio, nullptr);
  EXPECT_DOUBLE_EQ(*ratio, 0.1);
}

TEST(StreamDaemon, CountsDuplicateStaleCorruptAndBadSubnet) {
  obs::MetricsRegistry::Global().ResetForTest();
  StreamDaemon daemon(TinyWorld(), {}, {});
  auto& q = daemon.queue();

  q.Push(BeaconFrame(0, 3, 10, 5));
  q.Push(BeaconFrame(0, 3, 10, 5));  // duplicate seq: idempotent
  q.Push(BeaconFrame(0, 1, 4, 2));   // stale seq: reordered, ignored
  q.Push("not a frame");             // fails CRC: corrupt
  q.Push(BeaconFrame(static_cast<std::uint32_t>(TinyWorld().subnets().size()), 1, 4, 2));
  daemon.Tick();

  EXPECT_EQ(daemon.stats().applied, 1u);
  EXPECT_EQ(daemon.stats().duplicate, 1u);
  EXPECT_EQ(daemon.stats().stale_seq, 1u);
  EXPECT_EQ(daemon.stats().corrupt, 1u);
  EXPECT_EQ(daemon.stats().bad_subnet, 1u);
  auto& reg = obs::MetricsRegistry::Global();
  EXPECT_EQ(reg.counter("stream.events.duplicate").value(), 1u);
  EXPECT_EQ(reg.counter("stream.events.corrupt").value(), 1u);
  EXPECT_EQ(reg.counter("stream.events.bad_subnet").value(), 1u);
}

TEST(StreamDaemon, BeaconAndDemandSequencesAreIndependent) {
  StreamDaemon daemon(TinyWorld(), {}, {});
  daemon.queue().Push(BeaconFrame(0, 2, 10, 5));
  daemon.queue().Push(DemandFrame(0, 1, 42.0));  // seq 1 < beacon seq 2: fine
  daemon.Tick();
  EXPECT_EQ(daemon.stats().applied, 2u);
  EXPECT_EQ(daemon.stats().stale_seq, 0u);
}

TEST(StreamDaemon, StalenessWalksActiveStaleExpired) {
  DaemonConfig config;
  config.staleness_ticks = 2;
  config.expiry_ticks = 3;
  StreamDaemon daemon(TinyWorld(), {}, config);

  daemon.queue().Push(BeaconFrame(0, 1, 10, 5));
  daemon.Tick();  // tick 1: applied
  EXPECT_EQ(daemon.liveness(0), SubnetLiveness::kActive);
  // Untouched subnets never enter the state machine.
  EXPECT_EQ(daemon.liveness(1), SubnetLiveness::kNeverSeen);

  daemon.Tick();  // tick 2: quiet 1 tick
  EXPECT_EQ(daemon.liveness(0), SubnetLiveness::kActive);
  daemon.Tick();  // tick 3: quiet 2 ticks >= staleness_ticks
  EXPECT_EQ(daemon.liveness(0), SubnetLiveness::kStale);
  EXPECT_EQ(daemon.count_in(SubnetLiveness::kStale), 1u);
  daemon.Tick();  // quiet 3
  daemon.Tick();  // quiet 4
  EXPECT_EQ(daemon.liveness(0), SubnetLiveness::kStale);
  daemon.Tick();  // quiet 5 >= staleness + expiry
  EXPECT_EQ(daemon.liveness(0), SubnetLiveness::kExpired);

  // A fresh frame revives the slot — and expiry never dropped its state.
  daemon.queue().Push(BeaconFrame(0, 2, 10, 8));
  daemon.Tick();
  EXPECT_EQ(daemon.liveness(0), SubnetLiveness::kActive);
  EXPECT_TRUE(daemon.ExportClassified().IsCellular(TinyWorld().subnets()[0].block));
}

TEST(StreamDaemon, ExpiryRetainsLastKnownState) {
  DaemonConfig config;
  config.staleness_ticks = 1;
  config.expiry_ticks = 1;
  StreamDaemon daemon(TinyWorld(), {}, config);
  daemon.queue().Push(BeaconFrame(0, 1, 10, 9));
  daemon.Tick();
  const std::string before = ClassifiedBytes(daemon);
  for (int i = 0; i < 5; ++i) daemon.Tick();
  EXPECT_EQ(daemon.liveness(0), SubnetLiveness::kExpired);
  // Expiry is an observability signal, not an eviction: exports are
  // unchanged, because the batch pipeline has no notion of loss.
  EXPECT_EQ(ClassifiedBytes(daemon), before);
}

TEST(StreamDaemon, CheckpointRestoreRoundTripsStateAndRecomputesVerdicts) {
  const std::uint64_t hash =
      StreamDaemon::ConfigHash(simnet::WorldConfig::Tiny(), {});
  CheckpointStore store(FreshDir("daemon_ckpt"), hash);

  StreamDaemon daemon(TinyWorld(), {}, {}, &store);
  daemon.queue().Push(BeaconFrame(0, 1, 10, 9));
  daemon.queue().Push(BeaconFrame(2, 4, 20, 3));
  daemon.queue().Push(DemandFrame(0, 2, 123.25));
  daemon.Tick();
  ASSERT_TRUE(daemon.Checkpoint());

  StreamDaemon recovered(TinyWorld(), {}, {}, &store);
  ASSERT_TRUE(recovered.TryRestore());
  EXPECT_EQ(recovered.tick(), daemon.tick());
  EXPECT_EQ(ClassifiedBytes(recovered), ClassifiedBytes(daemon));
  EXPECT_EQ(snapshot::EncodeSnapshot(
                snapshot::EncodeDatasets(recovered.ExportBeacons(),
                                         recovered.ExportDemand())),
            snapshot::EncodeSnapshot(snapshot::EncodeDatasets(
                daemon.ExportBeacons(), daemon.ExportDemand())));
  // Restored seqs still dedup: replaying the same frames applies nothing.
  recovered.queue().Push(BeaconFrame(0, 1, 10, 9));
  recovered.queue().Push(DemandFrame(0, 2, 123.25));
  recovered.Tick();
  EXPECT_EQ(recovered.stats().applied, 0u);
  EXPECT_EQ(recovered.stats().duplicate, 2u);
}

TEST(StreamDaemon, RestoreWithoutStoreOrCheckpointIsClean) {
  StreamDaemon no_store(TinyWorld(), {}, {});
  EXPECT_FALSE(no_store.TryRestore());
  EXPECT_FALSE(no_store.Checkpoint());

  const std::uint64_t hash =
      StreamDaemon::ConfigHash(simnet::WorldConfig::Tiny(), {});
  CheckpointStore empty(FreshDir("daemon_ckpt_empty"), hash);
  StreamDaemon fresh(TinyWorld(), {}, {}, &empty);
  EXPECT_FALSE(fresh.TryRestore());
  EXPECT_EQ(fresh.tick(), 0u);
}

TEST(StreamDaemon, ClassifierConfigChangesInvalidateCheckpoints) {
  core::ClassifierConfig strict;
  strict.min_netinfo_hits = 50;
  EXPECT_NE(StreamDaemon::ConfigHash(simnet::WorldConfig::Tiny(), {}),
            StreamDaemon::ConfigHash(simnet::WorldConfig::Tiny(), strict));
  simnet::WorldConfig reseeded = simnet::WorldConfig::Tiny();
  reseeded.seed += 1;
  EXPECT_NE(StreamDaemon::ConfigHash(simnet::WorldConfig::Tiny(), {}),
            StreamDaemon::ConfigHash(reseeded, {}));
}

TEST(StreamDaemon, RunUntilClosedDrainsEverythingAcrossManyTicks) {
  DaemonConfig config;
  config.queue_capacity = 4;
  config.backpressure = BackpressurePolicy::kBlock;
  config.max_events_per_tick = 2;
  StreamDaemon daemon(TinyWorld(), {}, config);

  std::thread producer([&] {
    for (std::uint32_t seq = 1; seq <= 50; ++seq) {
      daemon.queue().Push(BeaconFrame(0, seq, seq, seq / 2));
    }
    daemon.queue().Close();
  });
  daemon.RunUntilClosed();
  producer.join();
  EXPECT_EQ(daemon.stats().applied, 50u);
  EXPECT_GE(daemon.tick(), 25u);  // max 2 frames per tick
}

}  // namespace
}  // namespace cellspot::stream
