#include "cellspot/util/table.hpp"

#include <gtest/gtest.h>

namespace cellspot::util {
namespace {

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, RejectsOversizedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"1", "2", "3"}), std::invalid_argument);
}

TEST(TextTable, PadsShortRow) {
  TextTable t({"a", "b"});
  t.AddRow({"only"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(t.Render().find("only"), std::string::npos);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"Name", "Value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "22"});
  const std::string out = t.Render();
  // Every line must be equally wide up to trailing content.
  const auto first_nl = out.find('\n');
  const std::string header_line = out.substr(0, first_nl);
  EXPECT_NE(header_line.find("Name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Separator exists.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, RightAlignmentPadsLeft) {
  TextTable t({"k", "num"});
  t.AddRow({"a", "5"});
  t.AddRow({"b", "500"});
  const std::string out = t.Render();
  // "5" in a 3-wide right-aligned column appears as "  5".
  EXPECT_NE(out.find("  5\n"), std::string::npos);
}

TEST(TextTable, TitleBanner) {
  TextTable t({"x"});
  const std::string out = t.RenderWithTitle("Table 4");
  EXPECT_EQ(out.rfind("== Table 4 ==", 0), 0u);
}

TEST(TextTable, SetAlignmentsValidates) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.SetAlignments({Align::kLeft}), std::invalid_argument);
  t.SetAlignments({Align::kRight, Align::kLeft});  // no throw
}

}  // namespace
}  // namespace cellspot::util
