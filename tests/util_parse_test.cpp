// The one checked number parser every loader routes through. The rules
// under test are exactly the ones the CSV/RIB loaders rely on: base-10
// only, no leading '+' or whitespace, no trailing garbage, overflow
// rejected, and doubles must be finite.
#include "cellspot/util/parse.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "cellspot/util/error.hpp"

namespace cellspot::util {
namespace {

TEST(TryParseNumber, AcceptsPlainIntegers) {
  EXPECT_EQ(TryParseNumber<std::uint32_t>("0"), 0u);
  EXPECT_EQ(TryParseNumber<std::uint32_t>("65000"), 65000u);
  EXPECT_EQ(TryParseNumber<std::uint64_t>("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(TryParseNumber<std::int32_t>("-42"), -42);
}

TEST(TryParseNumber, RejectsEmptyAndGarbage) {
  EXPECT_FALSE(TryParseNumber<std::uint32_t>(""));
  EXPECT_FALSE(TryParseNumber<std::uint32_t>("abc"));
  EXPECT_FALSE(TryParseNumber<std::uint32_t>("-"));
  EXPECT_FALSE(TryParseNumber<double>(""));
  EXPECT_FALSE(TryParseNumber<double>("."));
}

TEST(TryParseNumber, RejectsTrailingGarbage) {
  EXPECT_FALSE(TryParseNumber<std::uint32_t>("123x"));
  EXPECT_FALSE(TryParseNumber<std::uint32_t>("123 "));
  EXPECT_FALSE(TryParseNumber<std::uint64_t>("9 9"));
  EXPECT_FALSE(TryParseNumber<double>("1.5e3junk"));
  EXPECT_FALSE(TryParseNumber<double>("0.5,"));
}

TEST(TryParseNumber, RejectsLeadingPlusAndWhitespace) {
  EXPECT_FALSE(TryParseNumber<std::uint32_t>("+1"));
  EXPECT_FALSE(TryParseNumber<std::uint32_t>(" 1"));
  EXPECT_FALSE(TryParseNumber<std::uint32_t>("\t1"));
  EXPECT_FALSE(TryParseNumber<double>("+0.5"));
  EXPECT_FALSE(TryParseNumber<double>(" 0.5"));
}

TEST(TryParseNumber, RejectsOverflowAndNegativeIntoUnsigned) {
  EXPECT_FALSE(TryParseNumber<std::uint32_t>("4294967296"));  // 2^32
  EXPECT_FALSE(TryParseNumber<std::uint64_t>("18446744073709551616"));
  EXPECT_FALSE(TryParseNumber<std::uint32_t>("-1"));
  EXPECT_FALSE(TryParseNumber<std::int32_t>("2147483648"));
  EXPECT_EQ(TryParseNumber<std::uint32_t>("4294967295"), 4294967295u);
}

TEST(TryParseNumber, DoublesMustBeFinite) {
  EXPECT_EQ(TryParseNumber<double>("0.5"), 0.5);
  EXPECT_EQ(TryParseNumber<double>("-2.25e3"), -2250.0);
  EXPECT_FALSE(TryParseNumber<double>("inf"));
  EXPECT_FALSE(TryParseNumber<double>("-inf"));
  EXPECT_FALSE(TryParseNumber<double>("nan"));
  EXPECT_FALSE(TryParseNumber<double>("1e999"));  // overflows to infinity
}

TEST(TryParseNumber, NoHexOrLocaleForms) {
  EXPECT_FALSE(TryParseNumber<std::uint32_t>("0x1F"));
  EXPECT_FALSE(TryParseNumber<double>("1,5"));
  // "0x2": from_chars parses the leading 0 and leaves "x2" → rejected.
  EXPECT_FALSE(TryParseNumber<double>("0x2"));
}

TEST(ParseNumber, ThrowsBadNumberWithContext) {
  EXPECT_EQ(ParseNumber<std::uint64_t>("12", "hits"), 12u);
  try {
    (void)ParseNumber<std::uint64_t>("12x", "BeaconDataset: bad count");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.category(), ParseErrorCategory::kBadNumber);
    EXPECT_NE(std::string(e.what()).find("BeaconDataset: bad count"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'12x'"), std::string::npos);
  }
}

}  // namespace
}  // namespace cellspot::util
