// Round-trip properties: formatting followed by parsing is the identity,
// for the CSV line codec and the beacon log line codec, over seeded
// randomized inputs plus hand-picked edge cases.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "cellspot/cdn/beacon_generator.hpp"
#include "cellspot/cdn/beacon_log.hpp"
#include "cellspot/netaddr/ip_address.hpp"
#include "cellspot/netinfo/connection.hpp"
#include "cellspot/util/csv.hpp"
#include "cellspot/util/date.hpp"
#include "cellspot/util/rng.hpp"

namespace cellspot {
namespace {

// ---- CSV line codec --------------------------------------------------------

// Alphabet that exercises quoting: commas, double quotes, spaces, and
// plain characters. Newlines are excluded — the codec is line-based.
std::string RandomField(util::Rng& rng) {
  static constexpr std::string_view kAlphabet = "ab,\"z 9.-_";
  const std::size_t len = rng.UniformInt(0, 8);  // empty fields included
  std::string field;
  for (std::size_t i = 0; i < len; ++i) {
    field += kAlphabet[rng.UniformInt(0, kAlphabet.size() - 1)];
  }
  return field;
}

TEST(CsvRoundTrip, RandomizedFieldsSurviveJoinThenParse) {
  util::Rng rng(2024);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::string> fields;
    const std::size_t n = rng.UniformInt(1, 8);
    for (std::size_t i = 0; i < n; ++i) fields.push_back(RandomField(rng));
    const std::string line = util::JoinCsvLine(fields);
    EXPECT_EQ(util::ParseCsvLine(line), fields) << "line: " << line;
  }
}

TEST(CsvRoundTrip, EdgeCases) {
  const std::vector<std::vector<std::string>> cases = {
      {""},                       // single empty field
      {"", ""},                   // two empty fields
      {"a,b", "c"},               // embedded comma
      {"say \"hi\""},             // embedded quotes
      {"\""},                     // a lone quote
      {" leading", "trailing "},  // whitespace preserved
      {",", "\",\""},             // quoting metacharacters together
  };
  for (const auto& fields : cases) {
    EXPECT_EQ(util::ParseCsvLine(util::JoinCsvLine(fields)), fields);
  }
}

// ---- beacon log line codec -------------------------------------------------

cdn::BeaconHit RandomHit(util::Rng& rng) {
  cdn::BeaconHit hit;
  hit.day = static_cast<std::int32_t>(
      rng.UniformInt(0, static_cast<std::uint64_t>(util::kBeaconWindowDays) - 1));
  if (rng.Chance(0.5)) {
    hit.client_ip =
        netaddr::IpAddress::V4(static_cast<std::uint32_t>(rng.UniformInt(0, 0xFFFFFFFFULL)));
  } else {
    std::array<std::uint8_t, 16> bytes;
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
    hit.client_ip = netaddr::IpAddress::V6(bytes);
  }
  const auto browsers = netinfo::AllBrowsers();
  hit.browser = browsers[rng.UniformInt(0, browsers.size() - 1)];
  hit.has_netinfo = rng.Chance(0.7);
  // The log writes "-" for hits without API data, so connection only
  // round-trips when has_netinfo; it must come back kUnknown otherwise.
  hit.connection =
      hit.has_netinfo
          ? static_cast<netinfo::ConnectionType>(
                rng.UniformInt(0, netinfo::kConnectionTypeCount - 1))
          : netinfo::ConnectionType::kUnknown;
  return hit;
}

TEST(BeaconLogRoundTrip, RandomizedHitsSurviveFormatThenParse) {
  util::Rng rng(7);
  for (int iter = 0; iter < 1000; ++iter) {
    const cdn::BeaconHit hit = RandomHit(rng);
    const std::string line = cdn::FormatBeaconLogLine(hit);
    const cdn::BeaconHit parsed = cdn::ParseBeaconLogLine(line);
    EXPECT_EQ(parsed.day, hit.day) << line;
    EXPECT_EQ(parsed.client_ip, hit.client_ip) << line;
    EXPECT_EQ(parsed.browser, hit.browser) << line;
    EXPECT_EQ(parsed.has_netinfo, hit.has_netinfo) << line;
    EXPECT_EQ(parsed.connection, hit.connection) << line;
  }
}

TEST(BeaconLogRoundTrip, NoNetinfoFormatsAsDash) {
  cdn::BeaconHit hit;
  hit.client_ip = netaddr::IpAddress::Parse("198.51.100.7");
  hit.day = 3;
  hit.has_netinfo = false;
  hit.connection = netinfo::ConnectionType::kWifi;  // stale value, not logged
  const std::string line = cdn::FormatBeaconLogLine(hit);
  EXPECT_EQ(line, "3,198.51.100.7,chrome-mobile,-");
  const cdn::BeaconHit parsed = cdn::ParseBeaconLogLine(line);
  EXPECT_FALSE(parsed.has_netinfo);
  EXPECT_EQ(parsed.connection, netinfo::ConnectionType::kUnknown);
}

}  // namespace
}  // namespace cellspot
