#include "cellspot/stream/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cellspot/obs/metrics.hpp"

namespace cellspot::stream {
namespace {

TEST(FrameQueue, PreservesFifoOrder) {
  FrameQueue q(8, BackpressurePolicy::kBlock);
  EXPECT_TRUE(q.Push("a"));
  EXPECT_TRUE(q.Push("b"));
  EXPECT_TRUE(q.Push("c"));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Pop(), "a");
  EXPECT_EQ(q.Pop(), "b");
  EXPECT_EQ(q.Pop(), "c");
  EXPECT_EQ(q.size(), 0u);
}

TEST(FrameQueue, ShedOldestEvictsFrontAndCounts) {
  obs::MetricsRegistry::Global().ResetForTest();
  FrameQueue q(2, BackpressurePolicy::kShedOldest);
  EXPECT_TRUE(q.Push("a"));
  EXPECT_TRUE(q.Push("b"));
  EXPECT_TRUE(q.Push("c"));  // evicts "a", admits "c"
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.shed_oldest(), 1u);
  EXPECT_EQ(q.shed_newest(), 0u);
  EXPECT_EQ(q.Pop(), "b");
  EXPECT_EQ(q.Pop(), "c");
  EXPECT_EQ(obs::MetricsRegistry::Global().counter("stream.queue.shed_oldest").value(),
            1u);
}

TEST(FrameQueue, ShedNewestRejectsIncomingAndCounts) {
  obs::MetricsRegistry::Global().ResetForTest();
  FrameQueue q(2, BackpressurePolicy::kShedNewest);
  EXPECT_TRUE(q.Push("a"));
  EXPECT_TRUE(q.Push("b"));
  EXPECT_FALSE(q.Push("c"));  // full: incoming frame dropped
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.shed_newest(), 1u);
  EXPECT_EQ(q.shed_oldest(), 0u);
  EXPECT_EQ(q.Pop(), "a");
  EXPECT_EQ(q.Pop(), "b");
  EXPECT_EQ(obs::MetricsRegistry::Global().counter("stream.queue.shed_newest").value(),
            1u);
}

TEST(FrameQueue, BlockPolicyWaitsForConsumer) {
  FrameQueue q(1, BackpressurePolicy::kBlock);
  EXPECT_TRUE(q.Push("first"));
  std::thread consumer([&] {
    EXPECT_EQ(q.Pop(), "first");
    EXPECT_EQ(q.Pop(), "second");
  });
  EXPECT_TRUE(q.Push("second"));  // blocks until the consumer pops "first"
  consumer.join();
  EXPECT_EQ(q.pushed(), 2u);
  EXPECT_EQ(q.shed_oldest(), 0u);
  EXPECT_EQ(q.shed_newest(), 0u);
}

TEST(FrameQueue, CloseUnblocksBlockedProducer) {
  FrameQueue q(1, BackpressurePolicy::kBlock);
  EXPECT_TRUE(q.Push("only"));
  std::thread producer([&] { EXPECT_FALSE(q.Push("stuck")); });
  q.Close();  // the blocked Push must return false, not deadlock
  producer.join();
}

TEST(FrameQueue, CloseUnblocksBlockedConsumer) {
  FrameQueue q(4, BackpressurePolicy::kBlock);
  std::thread consumer([&] { EXPECT_EQ(q.Pop(), std::nullopt); });
  q.Close();
  consumer.join();
}

TEST(FrameQueue, ClosedQueueRejectsPushesButDrains) {
  FrameQueue q(4, BackpressurePolicy::kShedNewest);
  EXPECT_TRUE(q.Push("kept"));
  q.Close();
  EXPECT_FALSE(q.Push("late"));
  EXPECT_FALSE(q.PushWait("late"));
  EXPECT_TRUE(q.closed());
  // Already-queued frames still drain after close.
  EXPECT_EQ(q.Pop(), "kept");
  EXPECT_EQ(q.Pop(), std::nullopt);
}

TEST(FrameQueue, PushWaitNeverShedsUnderShedPolicies) {
  FrameQueue q(1, BackpressurePolicy::kShedOldest);
  EXPECT_TRUE(q.Push("a"));
  std::thread consumer([&] {
    EXPECT_EQ(q.Pop(), "a");
    EXPECT_EQ(q.Pop(), "final");
  });
  // Under kShedOldest a plain Push would evict "a"; PushWait must block
  // for space instead — this is how final cumulative rounds stay lossless.
  EXPECT_TRUE(q.PushWait("final"));
  consumer.join();
  EXPECT_EQ(q.shed_oldest(), 0u);
}

TEST(FrameQueue, DrainIntoRespectsBudget) {
  FrameQueue q(8, BackpressurePolicy::kBlock);
  for (int i = 0; i < 5; ++i) q.Push(std::string(1, static_cast<char>('a' + i)));
  std::vector<std::string> out;
  EXPECT_EQ(q.DrainInto(out, 3), 3u);
  EXPECT_EQ(out, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.DrainInto(out, 100), 2u);  // appends, drains the rest
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(q.DrainInto(out, 100), 0u);  // empty queue: no-op
}

TEST(FrameQueue, WaitForFrameSignalsCloseAndData) {
  FrameQueue q(4, BackpressurePolicy::kBlock);
  q.Push("x");
  EXPECT_TRUE(q.WaitForFrame());  // frame waiting: no block
  std::string out;
  EXPECT_TRUE(q.TryPop(out));
  EXPECT_EQ(out, "x");
  std::thread waiter([&] { EXPECT_FALSE(q.WaitForFrame()); });
  q.Close();
  waiter.join();
}

TEST(FrameQueue, ZeroCapacityClampsToOne) {
  FrameQueue q(0, BackpressurePolicy::kShedNewest);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.Push("a"));
  EXPECT_FALSE(q.Push("b"));
}

TEST(BackpressurePolicy, NamesRoundTrip) {
  for (const auto policy : {BackpressurePolicy::kBlock, BackpressurePolicy::kShedOldest,
                            BackpressurePolicy::kShedNewest}) {
    const auto parsed = ParseBackpressurePolicy(BackpressurePolicyName(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(ParseBackpressurePolicy("drop-tail").has_value());
  EXPECT_FALSE(ParseBackpressurePolicy("").has_value());
}

}  // namespace
}  // namespace cellspot::stream
