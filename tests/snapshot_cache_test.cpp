// The persistent stage cache through analysis::Pipeline: a second run
// with the same config must hit every cached stage (no
// pipeline.build_world / generate_datasets / classify spans or timings)
// and produce byte-identical exports; any config change must key a
// different snapshot and recompute.
#include "cellspot/analysis/pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cellspot/obs/metrics.hpp"
#include "cellspot/snapshot/serde.hpp"
#include "cellspot/snapshot/snapshot.hpp"
#include "cellspot/snapshot/stage_cache.hpp"

namespace cellspot::analysis {
namespace {

namespace fs = std::filesystem;

std::uint64_t CounterValue(std::string_view name) {
  for (const auto& c : obs::MetricsRegistry::Global().Snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

bool HasPipelineSpan(std::string_view leaf) {
  const std::string needle = "pipeline." + std::string(leaf);
  for (const auto& s : obs::MetricsRegistry::Global().Snapshot().spans) {
    if (s.path.find(needle) != std::string::npos) return true;
  }
  return false;
}

bool HasTiming(const Pipeline& p, std::string_view stage) {
  for (const StageTiming& t : p.timings()) {
    if (t.stage == stage) return true;
  }
  return false;
}

std::string Exports(const Experiment& exp) {
  std::ostringstream out;
  exp.beacons.SaveCsv(out);
  exp.demand.SaveCsv(out);
  return out.str();
}

fs::path FreshDir(std::string_view name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("snapcache_" + std::string(name));
  fs::remove_all(dir);
  return dir;
}

TEST(StageCachePipeline, WarmRunSkipsCachedStagesByteIdentically) {
  const fs::path dir = FreshDir("warm");
  const Pipeline::Config config{.world = simnet::WorldConfig::Tiny(), .snapshot_dir = dir.string()};

  obs::MetricsRegistry::Global().ResetForTest();
  Pipeline cold(config);
  cold.Run();
  EXPECT_TRUE(HasTiming(cold, "build_world"));
  EXPECT_TRUE(HasTiming(cold, "generate_datasets"));
  EXPECT_TRUE(HasTiming(cold, "classify"));
  EXPECT_EQ(CounterValue("snapshot.hit"), 0u);
  // world + datasets + classified + the compiled LPM engine
  EXPECT_EQ(CounterValue("snapshot.miss.absent"), 4u);
  EXPECT_GT(CounterValue("snapshot.bytes_written"), 0u);

  obs::MetricsRegistry::Global().ResetForTest();
  Pipeline warm(config);
  warm.Run();
  EXPECT_EQ(CounterValue("snapshot.hit"), 4u);
  EXPECT_EQ(CounterValue("snapshot.miss"), 0u);
  EXPECT_GT(CounterValue("snapshot.bytes_read"), 0u);
  // The cached stages never ran: no spans, no timings.
  EXPECT_FALSE(HasPipelineSpan("build_world"));
  EXPECT_FALSE(HasPipelineSpan("generate_datasets"));
  EXPECT_FALSE(HasPipelineSpan("classify"));
  EXPECT_FALSE(HasTiming(warm, "build_world"));
  EXPECT_FALSE(HasTiming(warm, "generate_datasets"));
  EXPECT_FALSE(HasTiming(warm, "classify"));
  // Aggregate/filter are recomputed (cheap, not snapshotted).
  EXPECT_TRUE(HasTiming(warm, "aggregate"));
  EXPECT_TRUE(HasTiming(warm, "filter"));

  EXPECT_EQ(Exports(warm.experiment()), Exports(cold.experiment()));
  EXPECT_EQ(warm.experiment().classified.ratios(), cold.experiment().classified.ratios());
  EXPECT_EQ(warm.experiment().classified.cellular(),
            cold.experiment().classified.cellular());
  EXPECT_EQ(warm.experiment().filtered.kept.size(), cold.experiment().filtered.kept.size());
}

TEST(StageCachePipeline, DifferentSeedKeysDifferentSnapshots) {
  const fs::path dir = FreshDir("seed");
  Pipeline::Config config{.world = simnet::WorldConfig::Tiny(), .snapshot_dir = dir.string()};
  Pipeline cold(config);
  cold.Run();

  obs::MetricsRegistry::Global().ResetForTest();
  config.world.seed += 1;
  Pipeline other(config);
  other.Run();
  EXPECT_EQ(CounterValue("snapshot.hit"), 0u);
  EXPECT_EQ(CounterValue("snapshot.miss.absent"), 4u);
  EXPECT_TRUE(HasTiming(other, "build_world"));
}

TEST(StageCachePipeline, ClassifierConfigKeysOnlyTheClassifiedStage) {
  const fs::path dir = FreshDir("classifier");
  Pipeline::Config config{.world = simnet::WorldConfig::Tiny(), .snapshot_dir = dir.string()};
  Pipeline cold(config);
  cold.Run();

  obs::MetricsRegistry::Global().ResetForTest();
  config.classifier.threshold = 0.9;
  Pipeline reclass(config);
  reclass.Run();
  // World + datasets + lpm hit; the classified snapshot is keyed off
  // the classifier config and must recompute.
  EXPECT_EQ(CounterValue("snapshot.hit"), 3u);
  EXPECT_EQ(CounterValue("snapshot.miss.absent"), 1u);
  EXPECT_FALSE(HasTiming(reclass, "build_world"));
  EXPECT_TRUE(HasTiming(reclass, "classify"));

  // …and set_classifier invalidation composes with the cache: switching
  // back to the default config hits the snapshot stored by the first run.
  obs::MetricsRegistry::Global().ResetForTest();
  reclass.set_classifier({});
  (void)reclass.Classify();
  EXPECT_EQ(CounterValue("snapshot.hit"), 1u);
}

TEST(StageCachePipeline, EmptySnapshotDirDisablesCaching) {
  obs::MetricsRegistry::Global().ResetForTest();
  Pipeline p({.world = simnet::WorldConfig::Tiny()});
  (void)p.BuildWorld();
  EXPECT_EQ(CounterValue("snapshot.hit"), 0u);
  EXPECT_EQ(CounterValue("snapshot.miss"), 0u);
  EXPECT_TRUE(HasTiming(p, "build_world"));
}

// Writers use write-to-temp + atomic rename, so a reader racing a
// writer must see either a miss (file absent) or a complete, valid
// snapshot — never a torn read, never a quarantine.
TEST(StageCacheConcurrency, ReadersRacingAWriterNeverSeeTornSnapshots) {
  const fs::path dir = FreshDir("race");
  const simnet::WorldConfig config = simnet::WorldConfig::Tiny();
  const simnet::World world = simnet::World::Generate(config);
  const std::string reference =
      snapshot::EncodeSnapshot(snapshot::EncodeWorld(world));

  obs::MetricsRegistry::Global().ResetForTest();
  std::atomic<bool> writing{true};
  std::atomic<std::uint64_t> loads{0};
  std::thread writer([&] {
    snapshot::StageCache cache(dir);
    // Repeated stores keep rewriting the same key (tmp file + rename)
    // while readers race the path through absent -> present -> rewritten.
    for (int i = 0; i < 10; ++i) cache.StoreWorld(world);
    writing = false;
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      snapshot::StageCache cache(dir);
      while (writing || loads == 0) {
        if (auto loaded = cache.TryLoadWorld(config)) {
          ++loads;
          ASSERT_EQ(snapshot::EncodeSnapshot(snapshot::EncodeWorld(*loaded)),
                    reference);
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_GT(loads, 0u);
  // No reader ever saw a half-written file.
  for (const char* reason : {"checksum", "truncated", "bad-magic", "malformed"}) {
    EXPECT_EQ(CounterValue("snapshot.miss." + std::string(reason)), 0u) << reason;
  }
}

TEST(SnapshotDirFromEnv, ReadsEnvironment) {
  ::unsetenv("CELLSPOT_SNAPSHOT_DIR");
  EXPECT_EQ(SnapshotDirFromEnv(), "");
  ::setenv("CELLSPOT_SNAPSHOT_DIR", "/tmp/snapdir", 1);
  EXPECT_EQ(SnapshotDirFromEnv(), "/tmp/snapdir");
  ::unsetenv("CELLSPOT_SNAPSHOT_DIR");
}

}  // namespace
}  // namespace cellspot::analysis
