#include "cellspot/core/classifier.hpp"

#include <gtest/gtest.h>

namespace cellspot::core {
namespace {

using dataset::BeaconBlockStats;
using netaddr::Prefix;

BeaconBlockStats Stats(std::uint64_t netinfo, std::uint64_t cellular) {
  BeaconBlockStats s;
  s.hits = netinfo * 5;
  s.netinfo_hits = netinfo;
  s.cellular_labels = cellular;
  s.wifi_labels = netinfo - cellular;
  return s;
}

TEST(SubnetClassifier, RejectsBadConfig) {
  EXPECT_THROW(SubnetClassifier({.threshold = 0.0}), std::invalid_argument);
  EXPECT_THROW(SubnetClassifier({.threshold = 1.5}), std::invalid_argument);
  EXPECT_THROW(SubnetClassifier({.threshold = 0.5, .min_netinfo_hits = 0}),
               std::invalid_argument);
}

TEST(SubnetClassifier, DefaultThresholdIsPaperHalf) {
  const SubnetClassifier c;
  EXPECT_DOUBLE_EQ(c.config().threshold, 0.5);
}

TEST(SubnetClassifier, SingleBlockDecision) {
  const SubnetClassifier c;
  EXPECT_TRUE(c.IsCellular(Stats(100, 90)));
  EXPECT_TRUE(c.IsCellular(Stats(100, 50)));   // >= threshold
  EXPECT_FALSE(c.IsCellular(Stats(100, 49)));
  EXPECT_FALSE(c.IsCellular(Stats(0, 0)));     // unclassifiable
}

TEST(SubnetClassifier, MinHitsGate) {
  const SubnetClassifier strict({.threshold = 0.5, .min_netinfo_hits = 10});
  EXPECT_FALSE(strict.IsCellular(Stats(9, 9)));
  EXPECT_TRUE(strict.IsCellular(Stats(10, 9)));
}

TEST(SubnetClassifier, ClassifyDataset) {
  dataset::BeaconDataset beacons;
  const auto cell_block = Prefix::Parse("198.51.101.0/24");
  const auto fixed_block = Prefix::Parse("198.51.102.0/24");
  const auto silent_block = Prefix::Parse("198.51.103.0/24");
  beacons.Add(cell_block, Stats(40, 37));
  beacons.Add(fixed_block, Stats(40, 1));
  beacons.Add(silent_block, {.hits = 10});  // hits but no API data

  const SubnetClassifier c;
  const ClassifiedSubnets out = c.Classify(beacons);
  EXPECT_TRUE(out.IsCellular(cell_block));
  EXPECT_FALSE(out.IsCellular(fixed_block));
  EXPECT_FALSE(out.IsCellular(silent_block));
  ASSERT_NE(out.RatioOf(cell_block), nullptr);
  EXPECT_DOUBLE_EQ(*out.RatioOf(cell_block), 0.925);
  EXPECT_NE(out.RatioOf(fixed_block), nullptr);
  EXPECT_EQ(out.RatioOf(silent_block), nullptr);  // not observed
  EXPECT_EQ(out.observed_count(netaddr::Family::kIpv4), 2u);
  EXPECT_EQ(out.cellular_count(netaddr::Family::kIpv4), 1u);
}

TEST(SubnetClassifier, FamiliesCountedSeparately) {
  dataset::BeaconDataset beacons;
  beacons.Add(Prefix::Parse("198.51.101.0/24"), Stats(20, 19));
  beacons.Add(Prefix::Parse("2001:db8:1::/48"), Stats(20, 19));
  beacons.Add(Prefix::Parse("2001:db8:2::/48"), Stats(20, 1));
  const auto out = SubnetClassifier().Classify(beacons);
  EXPECT_EQ(out.cellular_count(netaddr::Family::kIpv4), 1u);
  EXPECT_EQ(out.cellular_count(netaddr::Family::kIpv6), 1u);
  EXPECT_EQ(out.observed_count(netaddr::Family::kIpv6), 2u);
}

TEST(SubnetClassifier, ThresholdBoundaryExactlyAtRatio) {
  dataset::BeaconDataset beacons;
  const auto block = Prefix::Parse("198.51.104.0/24");
  beacons.Add(block, Stats(10, 5));  // ratio exactly 0.5
  EXPECT_TRUE(SubnetClassifier({.threshold = 0.5}).Classify(beacons).IsCellular(block));
  EXPECT_FALSE(SubnetClassifier({.threshold = 0.51}).Classify(beacons).IsCellular(block));
}

}  // namespace
}  // namespace cellspot::core
