#include "cellspot/dns/dns_simulator.hpp"

#include <gtest/gtest.h>

#include <map>

namespace cellspot::dns {
namespace {

using asdb::OperatorKind;

const simnet::World& TinyWorld() {
  static const simnet::World world = simnet::World::Generate(simnet::WorldConfig::Tiny());
  return world;
}

const DnsSimulator& TinySim() {
  static const DnsSimulator sim(TinyWorld());
  return sim;
}

TEST(PublicDns, NamesAndAddresses) {
  EXPECT_EQ(PublicDnsServiceName(PublicDnsService::kGoogleDns), "GoogleDNS");
  EXPECT_EQ(PublicDnsAnycast(PublicDnsService::kGoogleDns).ToString(), "8.8.8.8");
  EXPECT_EQ(PublicDnsAnycast(PublicDnsService::kOpenDns).ToString(), "208.67.222.222");
  EXPECT_EQ(PublicDnsAnycast(PublicDnsService::kLevel3).ToString(), "4.2.2.2");
}

TEST(ResolverStats, CellularFraction) {
  ResolverStats r;
  EXPECT_DOUBLE_EQ(r.CellularFraction(), 0.0);
  r.cell_du = 1.0;
  r.fixed_du = 3.0;
  EXPECT_DOUBLE_EQ(r.CellularFraction(), 0.25);
}

TEST(DnsSimulator, Deterministic) {
  const DnsSimulator a(TinyWorld());
  const DnsSimulator b(TinyWorld());
  ASSERT_EQ(a.resolvers().size(), b.resolvers().size());
  for (std::size_t i = 0; i < a.resolvers().size(); i += 13) {
    EXPECT_EQ(a.resolvers()[i].address, b.resolvers()[i].address);
    EXPECT_DOUBLE_EQ(a.resolvers()[i].cell_du, b.resolvers()[i].cell_du);
  }
}

TEST(DnsSimulator, PublicServicesAlwaysPresent) {
  const auto resolvers = TinySim().resolvers();
  int public_count = 0;
  for (const ResolverStats& r : resolvers) {
    if (r.public_service.has_value()) {
      ++public_count;
      EXPECT_EQ(r.asn, 0u);
    } else {
      EXPECT_NE(r.asn, 0u);
    }
  }
  EXPECT_EQ(public_count, 3);
}

TEST(DnsSimulator, DemandConservedAcrossResolvers) {
  const auto& world = TinyWorld();
  double op_total = 0.0;
  for (const simnet::OperatorInfo& op : world.operators()) {
    if (op.kind == OperatorKind::kDedicatedCellular ||
        op.kind == OperatorKind::kMixed || op.kind == OperatorKind::kFixedOnly) {
      op_total += op.cell_demand_du + op.fixed_demand_du;
    }
  }
  double resolver_total = 0.0;
  for (const ResolverStats& r : TinySim().resolvers()) resolver_total += r.TotalDemand();
  EXPECT_NEAR(resolver_total / op_total, 1.0, 1e-6);
}

TEST(DnsSimulator, RoleConstraintsHold) {
  for (const ResolverStats& r : TinySim().resolvers()) {
    if (r.public_service.has_value()) continue;
    if (r.role == ResolverRole::kCellularOnly) {
      EXPECT_DOUBLE_EQ(r.fixed_du, 0.0);
    }
    if (r.role == ResolverRole::kFixedOnly) {
      EXPECT_DOUBLE_EQ(r.cell_du, 0.0);
    }
  }
}

TEST(DnsSimulator, MixedOperatorsShareResolvers) {
  const auto& world = TinyWorld();
  int shared = 0;
  int total = 0;
  for (const simnet::OperatorInfo& op : world.operators()) {
    if (op.kind != OperatorKind::kMixed) continue;
    for (const ResolverStats& r : TinySim().ResolversOf(op.asn)) {
      ++total;
      if (r.role == ResolverRole::kShared) ++shared;
    }
  }
  ASSERT_GT(total, 0);
  // Fig 9: ~60% of resolvers in mixed networks serve both populations.
  EXPECT_NEAR(static_cast<double>(shared) / total, 0.6, 0.12);
}

TEST(DnsSimulator, DedicatedOperatorsResolveMostlyCellular) {
  // A dedicated carrier's fleet is cellular-only apart from at most one
  // shared resolver absorbing its tiny corporate fixed arm.
  const auto& world = TinyWorld();
  for (const simnet::OperatorInfo& op : world.operators()) {
    if (op.kind != OperatorKind::kDedicatedCellular) continue;
    int shared = 0;
    for (const ResolverStats& r : TinySim().ResolversOf(op.asn)) {
      EXPECT_NE(r.role, ResolverRole::kFixedOnly);
      if (r.role == ResolverRole::kShared) ++shared;
    }
    EXPECT_LE(shared, 1);
  }
}

TEST(DnsSimulator, OperatorUsageTracksConfiguredPublicFraction) {
  const auto& world = TinyWorld();
  std::map<asdb::AsNumber, double> configured;
  for (const simnet::OperatorInfo& op : world.operators()) {
    configured[op.asn] = op.public_dns_fraction;
  }
  int checked = 0;
  for (const OperatorDnsUsage& u : TinySim().operator_usage()) {
    if (u.cell_demand_du <= 0.0) continue;
    const double total = u.TotalPublicShare();
    EXPECT_GE(total, 0.0);
    EXPECT_LE(total, 1.0);
    // Within the +-20% jitter applied per operator.
    EXPECT_NEAR(total, configured[u.asn], configured[u.asn] * 0.25 + 1e-9);
    ++checked;
  }
  EXPECT_GT(checked, 5);
}

TEST(DnsSimulator, AlgeriaStyleOperatorsForwardToPublic) {
  // DZ profile configures ~97% public DNS; its operators' usage must
  // reflect that (the Fig 10 extreme).
  const auto& world = TinyWorld();
  bool found = false;
  for (const simnet::OperatorInfo& op : world.operators()) {
    if (op.country_iso != "DZ" || op.cell_demand_du <= 0.0) continue;
    for (const OperatorDnsUsage& u : TinySim().operator_usage()) {
      if (u.asn != op.asn) continue;
      EXPECT_GT(u.TotalPublicShare(), 0.7);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DnsSimulator, GoogleDominatesPublicShare) {
  for (const OperatorDnsUsage& u : TinySim().operator_usage()) {
    if (u.TotalPublicShare() < 0.05) continue;
    EXPECT_GT(u.public_share[0], u.public_share[1]);  // Google > OpenDNS
    EXPECT_GT(u.public_share[0], u.public_share[2]);  // Google > Level3
  }
}

}  // namespace
}  // namespace cellspot::dns
