// Bench-harness core tests: SummarizeReps arithmetic and determinism,
// the cellspot-bench-run/1 record (JSON shape, schema validation, stage
// derivation from pipeline spans) and the cellspot-bench/2 trajectory
// append/validate cycle used by tools/bench_json and tools/bench.sh.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "cellspot/obs/bench.hpp"
#include "cellspot/obs/json.hpp"
#include "cellspot/obs/metrics.hpp"

namespace cellspot {
namespace {

using obs::BenchRun;
using obs::BenchStats;
using obs::JsonValue;

BenchRun MakeRun() {
  BenchRun run;
  run.bench = "unit_test";
  run.threads = 4;
  run.warmup = 1;
  run.scale = 0.05;
  run.items = 1234;
  run.timestamp = "2026-08-05T00:00:00Z";
  run.rep_wall_ms = {10.0, 12.0, 11.0, 13.0, 10.5};
  obs::MetricsRegistry reg;
  reg.counter("exec.jobs").Increment(5);
  reg.RecordSpan("pipeline.classify", 0, 7.5, 1000);
  reg.RecordSpan("pipeline.classify/exec.batch", 1, 7.0, 1000);
  run.metrics = reg.Snapshot();
  return run;
}

TEST(SummarizeReps, ComputesOrderStatistics) {
  const std::vector<double> reps = {10.0, 12.0, 11.0, 13.0, 10.5};
  const BenchStats stats = obs::SummarizeReps(reps);
  EXPECT_EQ(stats.reps, 5u);
  EXPECT_DOUBLE_EQ(stats.min, 10.0);
  EXPECT_DOUBLE_EQ(stats.max, 13.0);
  EXPECT_DOUBLE_EQ(stats.median, 11.0);
  EXPECT_NEAR(stats.mean, 11.3, 1e-9);
  EXPECT_GE(stats.p90, stats.median);
  EXPECT_LE(stats.p90, stats.max);
  EXPECT_GT(stats.stddev, 0.0);
}

TEST(SummarizeReps, DeterministicForFixedInput) {
  const std::vector<double> reps = {3.25, 1.5, 2.75, 9.0, 4.125, 2.0, 8.5};
  const BenchStats a = obs::SummarizeReps(reps);
  const BenchStats b = obs::SummarizeReps(reps);
  EXPECT_EQ(a, b);
}

TEST(SummarizeReps, SingleRepAndEmpty) {
  const std::vector<double> one = {42.0};
  const BenchStats stats = obs::SummarizeReps(one);
  EXPECT_DOUBLE_EQ(stats.min, 42.0);
  EXPECT_DOUBLE_EQ(stats.median, 42.0);
  EXPECT_DOUBLE_EQ(stats.max, 42.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
  EXPECT_THROW((void)obs::SummarizeReps(std::vector<double>{}), std::invalid_argument);
}

TEST(BenchRunJson, ValidatesAndCarriesStages) {
  const JsonValue doc = obs::BenchRunToJson(MakeRun());
  obs::ValidateBenchRun(doc);  // must not throw

  EXPECT_EQ(doc.Find("schema")->as_string(), obs::kBenchRunSchema);
  EXPECT_EQ(doc.Find("bench")->as_string(), "unit_test");
  EXPECT_EQ(doc.Find("reps")->as_number(), 5.0);
  EXPECT_TRUE(doc.Find("items_consistent")->as_bool());

  // Stage rows are derived from the "pipeline.*" root spans only.
  const auto& stages = doc.Find("stages")->as_array();
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].Find("stage")->as_string(), "classify");
  EXPECT_EQ(stages[0].Find("items")->as_number(), 1000.0);

  const auto* wall = doc.Find("wall_ms");
  ASSERT_NE(wall, nullptr);
  EXPECT_DOUBLE_EQ(wall->Find("min")->as_number(), 10.0);
  EXPECT_DOUBLE_EQ(wall->Find("median")->as_number(), 11.0);
}

TEST(BenchRunJson, DumpParsesBackIdentically) {
  const JsonValue doc = obs::BenchRunToJson(MakeRun());
  const JsonValue reparsed = JsonValue::Parse(doc.Dump());
  EXPECT_EQ(reparsed, doc);
  obs::ValidateBenchRun(reparsed);
}

TEST(BenchRunJson, ValidateRejectsMissingFields) {
  JsonValue doc = obs::BenchRunToJson(MakeRun());
  JsonValue::Object stripped;
  for (const auto& [key, value] : doc.as_object()) {
    if (key != "rep_wall_ms") stripped.emplace_back(key, value);
  }
  EXPECT_THROW(obs::ValidateBenchRun(JsonValue(std::move(stripped))),
               std::invalid_argument);
  EXPECT_THROW(obs::ValidateBenchRun(JsonValue::Parse(R"({"schema":"bogus/1"})")),
               std::invalid_argument);
}

TEST(Trajectory, AppendCreatesThenExtends) {
  const JsonValue run = obs::BenchRunToJson(MakeRun());
  const JsonValue first = obs::AppendToTrajectory(nullptr, run);
  obs::ValidateTrajectory(first);
  EXPECT_EQ(first.Find("schema")->as_string(), obs::kBenchTrajectorySchema);
  EXPECT_EQ(first.Find("bench")->as_string(), "unit_test");
  EXPECT_EQ(first.Find("runs")->as_array().size(), 1u);

  const JsonValue second = obs::AppendToTrajectory(&first, run);
  obs::ValidateTrajectory(second);
  EXPECT_EQ(second.Find("runs")->as_array().size(), 2u);
}

TEST(Trajectory, MalformedRunErrorNamesFieldAndRunIndex) {
  // A corrupt rep inside a trajectory must name both the run and the
  // offending field so a regression report points at the exact record.
  JsonValue traj =
      obs::AppendToTrajectory(nullptr, obs::BenchRunToJson(MakeRun()));
  std::string text = traj.Dump();
  const std::string needle = "\"rep_wall_ms\":[";
  const std::size_t open = text.find(needle);
  ASSERT_NE(open, std::string::npos);
  const std::size_t first = open + needle.size();
  const std::size_t end = text.find_first_of(",]", first);
  ASSERT_NE(end, std::string::npos);
  text.replace(first, end - first, "\"oops\"");  // corrupt rep 0 in place
  try {
    obs::ValidateTrajectory(JsonValue::Parse(text));
    FAIL() << "malformed trajectory accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("runs[0]"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("rep_wall_ms"), std::string::npos) << e.what();
  }
}

TEST(Trajectory, AppendRejectsBenchMismatch) {
  const JsonValue run = obs::BenchRunToJson(MakeRun());
  const JsonValue traj = obs::AppendToTrajectory(nullptr, run);
  BenchRun other = MakeRun();
  other.bench = "different_bench";
  EXPECT_THROW((void)obs::AppendToTrajectory(&traj, obs::BenchRunToJson(other)),
               std::invalid_argument);
}

TEST(BenchGate, PassesAtToleranceBoundaryAndFailsAbove) {
  // Baseline trajectory: one run with median 11.0 ms, tolerance 25%
  // puts the limit at exactly 13.75 ms.
  const JsonValue trajectory =
      obs::AppendToTrajectory(nullptr, obs::BenchRunToJson(MakeRun()));

  BenchRun at_limit = MakeRun();
  at_limit.rep_wall_ms = {13.75, 13.75, 13.75};
  const obs::BenchGateResult ok =
      obs::GateBenchRun(trajectory, obs::BenchRunToJson(at_limit), 0.25);
  EXPECT_TRUE(ok.comparable);
  EXPECT_FALSE(ok.regression) << "limit is inclusive: " << ok.note;
  EXPECT_EQ(ok.baseline_runs, 1u);
  EXPECT_DOUBLE_EQ(ok.baseline_median_ms, 11.0);
  EXPECT_DOUBLE_EQ(ok.fresh_median_ms, 13.75);

  BenchRun over = MakeRun();
  over.rep_wall_ms = {13.8, 13.8, 13.8};
  const obs::BenchGateResult bad =
      obs::GateBenchRun(trajectory, obs::BenchRunToJson(over), 0.25);
  EXPECT_TRUE(bad.comparable);
  EXPECT_TRUE(bad.regression);
  EXPECT_NE(bad.note.find("REGRESSION"), std::string::npos) << bad.note;
}

TEST(BenchGate, BaselineIsTheBestComparableMedian) {
  // A slower second run must not loosen the bar: the baseline stays the
  // minimum comparable median, not the latest one.
  JsonValue trajectory = obs::AppendToTrajectory(nullptr, obs::BenchRunToJson(MakeRun()));
  BenchRun slow = MakeRun();
  slow.rep_wall_ms = {20.0, 20.0, 20.0};
  trajectory = obs::AppendToTrajectory(&trajectory, obs::BenchRunToJson(slow));

  BenchRun fresh = MakeRun();
  fresh.rep_wall_ms = {14.0, 14.0, 14.0};  // fine vs 20, regressed vs 11
  const obs::BenchGateResult verdict =
      obs::GateBenchRun(trajectory, obs::BenchRunToJson(fresh), 0.25);
  EXPECT_EQ(verdict.baseline_runs, 2u);
  EXPECT_DOUBLE_EQ(verdict.baseline_median_ms, 11.0);
  EXPECT_TRUE(verdict.regression);
}

TEST(BenchGate, IncomparableConfigurationPassesWithNote) {
  const JsonValue trajectory =
      obs::AppendToTrajectory(nullptr, obs::BenchRunToJson(MakeRun()));
  BenchRun other_threads = MakeRun();
  other_threads.threads = 8;
  other_threads.rep_wall_ms = {500.0, 500.0, 500.0};  // slow, but not comparable
  const obs::BenchGateResult verdict =
      obs::GateBenchRun(trajectory, obs::BenchRunToJson(other_threads), 0.25);
  EXPECT_FALSE(verdict.comparable);
  EXPECT_FALSE(verdict.regression);
  EXPECT_NE(verdict.note.find("no comparable baseline"), std::string::npos)
      << verdict.note;
}

TEST(BenchGate, RejectsBenchMismatchAndBadTolerance) {
  const JsonValue trajectory =
      obs::AppendToTrajectory(nullptr, obs::BenchRunToJson(MakeRun()));
  BenchRun other = MakeRun();
  other.bench = "different_bench";
  EXPECT_THROW((void)obs::GateBenchRun(trajectory, obs::BenchRunToJson(other), 0.25),
               std::invalid_argument);
  const JsonValue run = obs::BenchRunToJson(MakeRun());
  EXPECT_THROW((void)obs::GateBenchRun(trajectory, run, -0.1), std::invalid_argument);
  EXPECT_THROW((void)obs::GateBenchRun(trajectory, run, std::nan("")),
               std::invalid_argument);
}

TEST(IsoTimestampUtc, LooksLikeIso8601) {
  const std::string ts = obs::IsoTimestampUtc();
  ASSERT_EQ(ts.size(), 20u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts.back(), 'Z');
}

}  // namespace
}  // namespace cellspot
