#include <gtest/gtest.h>

#include <sstream>

#include "cellspot/cdn/beacon_generator.hpp"
#include "cellspot/cdn/beacon_log.hpp"
#include "cellspot/cdn/demand_generator.hpp"
#include "cellspot/cdn/netinfo_series.hpp"
#include "cellspot/util/error.hpp"

namespace cellspot::cdn {
namespace {

const simnet::World& TinyWorld() {
  static const simnet::World world = simnet::World::Generate(simnet::WorldConfig::Tiny());
  return world;
}

const dataset::BeaconDataset& TinyBeacons() {
  static const dataset::BeaconDataset beacons = BeaconGenerator(TinyWorld()).GenerateDataset();
  return beacons;
}

TEST(BeaconGenerator, Deterministic) {
  const auto a = BeaconGenerator(TinyWorld()).GenerateDataset();
  const auto b = BeaconGenerator(TinyWorld()).GenerateDataset();
  EXPECT_EQ(a.block_count(), b.block_count());
  EXPECT_EQ(a.total_hits(), b.total_hits());
  EXPECT_EQ(a.total_netinfo_hits(), b.total_netinfo_hits());
}

TEST(BeaconGenerator, NetinfoCoverageMatchesTimeline) {
  const auto& d = TinyBeacons();
  ASSERT_GT(d.total_hits(), 0u);
  const double coverage =
      static_cast<double>(d.total_netinfo_hits()) / static_cast<double>(d.total_hits());
  // Dec 2016: ~13.2% of hits carry Network Information data.
  EXPECT_NEAR(coverage, 0.132, 0.015);
}

TEST(BeaconGenerator, CellularBlocksScoreHighRatios) {
  const auto& world = TinyWorld();
  const auto& d = TinyBeacons();
  int checked = 0;
  for (const simnet::Subnet& s : world.subnets()) {
    if (!s.truth_cellular || s.demand_du < 1.0 || s.beacon_scale <= 0.0) continue;
    if (s.tether_rate > 0.3) continue;
    const auto* stats = d.Find(s.block);
    if (stats == nullptr || stats->netinfo_hits < 50) continue;
    EXPECT_GT(stats->CellularRatio(), 0.5) << s.block.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(BeaconGenerator, FixedBlocksScoreLowRatios) {
  const auto& world = TinyWorld();
  const auto& d = TinyBeacons();
  int checked = 0;
  for (const simnet::Subnet& s : world.subnets()) {
    if (s.truth_cellular || s.proxy_terminating || s.tether_rate >= 0.0) continue;
    if (s.demand_du < 1.0 || s.beacon_scale <= 0.0) continue;
    const auto* stats = d.Find(s.block);
    if (stats == nullptr || stats->netinfo_hits < 50) continue;
    EXPECT_LT(stats->CellularRatio(), 0.1) << s.block.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(BeaconGenerator, ProxyBlocksLookCellular) {
  const auto& world = TinyWorld();
  const auto& d = TinyBeacons();
  int checked = 0;
  for (const simnet::Subnet& s : world.subnets()) {
    if (!s.proxy_terminating || s.demand_du <= 0.0) continue;
    const auto* stats = d.Find(s.block);
    if (stats == nullptr || stats->netinfo_hits < 30) continue;
    EXPECT_GT(stats->CellularRatio(), 0.6) << s.block.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(BeaconGenerator, SilentBlocksProduceNoHits) {
  const auto& world = TinyWorld();
  const auto& d = TinyBeacons();
  for (const simnet::Subnet& s : world.subnets()) {
    if (s.beacon_scale == 0.0) {
      EXPECT_EQ(d.Find(s.block), nullptr) << s.block.ToString();
    }
  }
}

TEST(BeaconGenerator, ExpectedCellularLabelFraction) {
  const auto& world = TinyWorld();
  for (const simnet::Subnet& s : world.subnets()) {
    const double f = ExpectedCellularLabelFraction(world, s);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    if (s.proxy_terminating) {
      EXPECT_DOUBLE_EQ(f, world.config().proxy_cell_label_fraction);
    } else if (!s.truth_cellular && s.tether_rate < 0.0) {
      EXPECT_LT(f, 0.01);
    }
  }
}

TEST(BeaconGenerator, StreamHitsRespectsCapAndBlocks) {
  const auto& world = TinyWorld();
  BeaconGenerator gen(world);
  std::uint64_t count = 0;
  const std::uint64_t emitted = gen.StreamHits(
      [&](const netaddr::Prefix& block, const BeaconHit& hit) {
        ++count;
        EXPECT_TRUE(block.Contains(hit.client_ip));
        EXPECT_GE(hit.day, 0);
        EXPECT_LT(hit.day, 31);
      },
      5000);
  EXPECT_EQ(emitted, count);
  EXPECT_LE(emitted, 5000u);
  EXPECT_GT(emitted, 0u);
}

TEST(BeaconLog, LineRoundTrip) {
  BeaconHit hit;
  hit.client_ip = netaddr::IpAddress::Parse("198.51.101.77");
  hit.day = 12;
  hit.browser = netinfo::Browser::kChromeMobile;
  hit.has_netinfo = true;
  hit.connection = netinfo::ConnectionType::kCellular;
  const std::string line = FormatBeaconLogLine(hit);
  EXPECT_EQ(line, "12,198.51.101.77,chrome-mobile,cellular");
  const BeaconHit parsed = ParseBeaconLogLine(line);
  EXPECT_EQ(parsed.client_ip, hit.client_ip);
  EXPECT_EQ(parsed.day, hit.day);
  EXPECT_EQ(parsed.browser, hit.browser);
  EXPECT_TRUE(parsed.has_netinfo);
  EXPECT_EQ(parsed.connection, hit.connection);
}

TEST(BeaconLog, NoNetinfoUsesDash) {
  BeaconHit hit;
  hit.client_ip = netaddr::IpAddress::Parse("2001:db8::9");
  hit.day = 0;
  hit.browser = netinfo::Browser::kSafariMobile;
  hit.has_netinfo = false;
  const std::string line = FormatBeaconLogLine(hit);
  EXPECT_EQ(line, "0,2001:db8::9,safari-mobile,-");
  const BeaconHit parsed = ParseBeaconLogLine(line);
  EXPECT_FALSE(parsed.has_netinfo);
}

TEST(BeaconLog, ParseRejectsMalformed) {
  EXPECT_THROW((void)ParseBeaconLogLine("1,2,3"), ParseError);
  EXPECT_THROW((void)ParseBeaconLogLine("99,1.2.3.4,chrome-mobile,wifi"), ParseError);
  EXPECT_THROW((void)ParseBeaconLogLine("1,nonsense,chrome-mobile,wifi"), ParseError);
  EXPECT_THROW((void)ParseBeaconLogLine("1,1.2.3.4,netscape,wifi"), ParseError);
  EXPECT_THROW((void)ParseBeaconLogLine("1,1.2.3.4,chrome-mobile,5g"), ParseError);
}

TEST(BeaconLog, StreamedLogAggregatesConsistently) {
  const auto& world = TinyWorld();
  BeaconGenerator gen(world);
  std::stringstream log;
  gen.StreamHits(
      [&](const netaddr::Prefix&, const BeaconHit& hit) {
        log << FormatBeaconLogLine(hit) << '\n';
      },
      20000);
  const dataset::BeaconDataset agg = AggregateBeaconLog(log);
  EXPECT_GT(agg.block_count(), 0u);
  EXPECT_GT(agg.total_hits(), 0u);
  EXPECT_LE(agg.total_netinfo_hits(), agg.total_hits());
}

TEST(DemandGenerator, DeterministicAndNormalized) {
  const auto a = DemandGenerator(TinyWorld()).GenerateDataset();
  const auto b = DemandGenerator(TinyWorld()).GenerateDataset();
  EXPECT_EQ(a.block_count(), b.block_count());
  EXPECT_NEAR(a.total(), dataset::kTotalDemandUnits, 1e-6);
  EXPECT_NEAR(b.total(), dataset::kTotalDemandUnits, 1e-6);
}

TEST(DemandGenerator, TracksWorldDemandShares) {
  const auto& world = TinyWorld();
  const auto demand = DemandGenerator(world).GenerateDataset();
  double cell = 0.0;
  demand.ForEach([&](const netaddr::Prefix& block, double du) {
    const simnet::Subnet* s = world.FindSubnet(block);
    ASSERT_NE(s, nullptr);
    if (s->truth_cellular) cell += du;
  });
  double world_cell = 0.0;
  double world_total = 0.0;
  for (const simnet::Subnet& s : world.subnets()) {
    if (!s.in_demand_snapshot || s.demand_du <= 0.0) continue;
    if (s.truth_cellular) world_cell += s.demand_du;
    world_total += s.demand_du;
  }
  const double expected = world_cell / world_total * dataset::kTotalDemandUnits;
  EXPECT_NEAR(cell / expected, 1.0, 0.05);
}

TEST(DemandGenerator, ExcludesInactiveAndOffSnapshot) {
  const auto& world = TinyWorld();
  const auto demand = DemandGenerator(world).GenerateDataset();
  for (const simnet::Subnet& s : world.subnets()) {
    if (s.demand_du <= 0.0 || !s.in_demand_snapshot) {
      EXPECT_DOUBLE_EQ(demand.DemandOf(s.block), 0.0) << s.block.ToString();
    }
  }
}

TEST(NetinfoSeries, MatchesModelWithLowNoise) {
  const auto series = SimulateAdoptionSeries({2015, 9}, {2017, 6}, 2000000, 42);
  ASSERT_EQ(series.size(), 22u);
  EXPECT_EQ(series.front().month, (util::YearMonth{2015, 9}));
  EXPECT_EQ(series.back().month, (util::YearMonth{2017, 6}));
  for (const AdoptionPoint& p : series) {
    EXPECT_NEAR(p.total, netinfo::NetInfoFraction(p.month), 0.01);
  }
  // Growth over the window (Fig 1's rising trend).
  EXPECT_GT(series.back().total, series.front().total);
}

TEST(NetinfoSeries, RejectsBadArguments) {
  EXPECT_THROW(SimulateAdoptionSeries({2017, 1}, {2016, 1}, 100, 1), std::invalid_argument);
  EXPECT_THROW(SimulateAdoptionSeries({2016, 1}, {2016, 2}, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace cellspot::cdn
