#include "cellspot/util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cellspot::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.UniformDouble(), b.UniformDouble());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformDouble() == b.UniformDouble()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
  EXPECT_FALSE(rng.Chance(-0.5));
  EXPECT_TRUE(rng.Chance(1.5));
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkIsIndependentOfStream) {
  Rng parent(99);
  Rng c0 = parent.Fork(0);
  Rng parent2(99);
  Rng c1 = parent2.Fork(1);
  // Different streams from identical parents must diverge.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (c0.UniformDouble() == c1.UniformDouble()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Zipf, RejectsEmpty) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution z(100, 1.1);
  double sum = 0.0;
  for (std::size_t k = 0; k < z.size(); ++k) sum += z.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, HeadDominates) {
  ZipfDistribution z(1000, 1.2);
  EXPECT_GT(z.Pmf(0), z.Pmf(1));
  EXPECT_GT(z.Pmf(1), z.Pmf(10));
  EXPECT_GT(z.Pmf(10), z.Pmf(500));
}

TEST(Zipf, SampleDistributionMatchesPmf) {
  ZipfDistribution z(50, 1.0);
  Rng rng(5);
  std::vector<int> counts(50, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, z.Pmf(0), 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, z.Pmf(1), 0.01);
}

TEST(Zipf, PmfOutOfRangeThrows) {
  ZipfDistribution z(10, 1.0);
  EXPECT_THROW((void)z.Pmf(10), std::out_of_range);
}

TEST(WeightedSampler, RejectsBadWeights) {
  EXPECT_THROW(WeightedSampler(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(WeightedSampler(std::vector<double>{1.0, -1.0}), std::invalid_argument);
  EXPECT_THROW(WeightedSampler(std::vector<double>{0.0, 0.0}), std::invalid_argument);
}

TEST(WeightedSampler, ZeroWeightNeverSampled) {
  const std::vector<double> w{0.0, 1.0, 0.0};
  WeightedSampler s(w);
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(s.Sample(rng), 1u);
}

TEST(WeightedSampler, ProportionalSampling) {
  const std::vector<double> w{1.0, 3.0};
  WeightedSampler s(w);
  Rng rng(17);
  int ones = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) ones += s.Sample(rng) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

}  // namespace
}  // namespace cellspot::util
