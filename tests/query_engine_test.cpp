// End-to-end query engine goldens: every preset, evaluated from a COLD
// snapshot load (never the live pipeline), must reproduce the
// analysis::reports numbers byte-for-byte at 1/2/8 threads; corrupt or
// truncated snapshot input must fail with a categorized SnapshotError /
// QueryError, never a crash; and a stream checkpoint is a first-class
// query source whose exports equal the batch artifacts.
#include "cellspot/query/presets.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cellspot/analysis/experiment.hpp"
#include "cellspot/analysis/export.hpp"
#include "cellspot/analysis/reports.hpp"
#include "cellspot/cdn/event_stream.hpp"
#include "cellspot/exec/executor.hpp"
#include "cellspot/faultsim/stream_corruptor.hpp"
#include "cellspot/query/engine.hpp"
#include "cellspot/snapshot/serde.hpp"
#include "cellspot/snapshot/snapshot.hpp"
#include "cellspot/stream/checkpoint.hpp"
#include "cellspot/stream/daemon.hpp"
#include "cellspot/util/sink.hpp"

namespace cellspot::query {
namespace {

namespace fs = std::filesystem;

const analysis::Experiment& TinyExp() {
  static const analysis::Experiment exp =
      analysis::RunExperiment(simnet::WorldConfig::Tiny());
  return exp;
}

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// world.snap / datasets.snap / classified.snap for the tiny experiment.
struct SnapshotFiles {
  fs::path world;
  fs::path datasets;
  fs::path classified;
};

SnapshotFiles WriteTinySnapshots(const fs::path& dir) {
  const analysis::Experiment& exp = TinyExp();
  SnapshotFiles files{dir / "world.tiny.snap", dir / "datasets.tiny.snap",
                      dir / "classified.tiny.snap"};
  snapshot::WriteSnapshotFile(files.world, snapshot::EncodeWorld(exp.world));
  snapshot::WriteSnapshotFile(files.datasets,
                              snapshot::EncodeDatasets(exp.beacons, exp.demand));
  snapshot::WriteSnapshotFile(files.classified,
                              snapshot::EncodeClassified(exp.classified));
  return files;
}

std::string RenderCsv(const Table& t) {
  std::stringstream out;
  const auto sink = util::MakeTableSink(util::TableFormat::kCsv, out);
  RenderTable(t, *sink);
  return out.str();
}

std::string ReadBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(QueryPresets, ByteIdenticalToReportsAtOneTwoEightThreads) {
  const fs::path dir = FreshDir("query_presets_golden");
  const SnapshotFiles files = WriteTinySnapshots(dir);
  const analysis::Experiment& exp = TinyExp();

  // The reference bytes, produced by the sequential report/export path.
  std::stringstream fig2_ref;
  analysis::WriteFig2Csv(exp, fig2_ref);
  std::stringstream country_ref;
  analysis::WriteCountryCsv(exp, country_ref);
  const analysis::DatasetSummary summary = analysis::SummarizeDatasets(exp);

  for (const unsigned threads : {1u, 2u, 8u}) {
    exec::Executor executor(threads);
    // Cold load: decode the snapshots, never touch the pipeline.
    const SnapshotBundle bundle = LoadBundleFromFiles(
        files.world, files.datasets, files.classified, BundleOptions{}, executor);
    const TableSet tables = BuildTables(bundle, executor);

    const Table table2 = RunPreset(Preset::kTable2, tables, executor);
    ASSERT_EQ(table2.row_count(), 6u) << threads;
    const Column* value = table2.FindColumn("value");
    EXPECT_EQ(value->f64[0], static_cast<double>(summary.beacon_v4_blocks));
    EXPECT_EQ(value->f64[1], static_cast<double>(summary.beacon_v6_blocks));
    EXPECT_EQ(value->f64[2], static_cast<double>(summary.demand_v4_blocks));
    EXPECT_EQ(value->f64[3], static_cast<double>(summary.demand_v6_blocks));
    EXPECT_EQ(value->f64[4], summary.beacon_coverage_of_demand_v4) << threads;
    EXPECT_EQ(value->f64[5], summary.beacon_coverage_of_demand_weight) << threads;

    EXPECT_EQ(RenderCsv(RunPreset(Preset::kFig2Cdf, tables, executor)), fig2_ref.str())
        << "fig2_cdf diverged at " << threads << " threads";
    EXPECT_EQ(RenderCsv(RunPreset(Preset::kCountryShare, tables, executor)),
              country_ref.str())
        << "country_share diverged at " << threads << " threads";
  }
}

TEST(QueryPresets, RecomputedClassificationEqualsSnapshot) {
  const fs::path dir = FreshDir("query_presets_reclassify");
  const SnapshotFiles files = WriteTinySnapshots(dir);
  exec::Executor executor(2);
  const SnapshotBundle with = LoadBundleFromFiles(files.world, files.datasets,
                                                  files.classified, BundleOptions{},
                                                  executor);
  // Empty classified path: classification recomputed from the beacons.
  const SnapshotBundle without =
      LoadBundleFromFiles(files.world, files.datasets, "", BundleOptions{}, executor);
  EXPECT_EQ(snapshot::EncodeSnapshot(snapshot::EncodeClassified(with.classified)),
            snapshot::EncodeSnapshot(snapshot::EncodeClassified(without.classified)));
  const TableSet a = BuildTables(with, executor);
  const TableSet b = BuildTables(without, executor);
  EXPECT_EQ(RenderCsv(RunPreset(Preset::kCountryShare, a, executor)),
            RenderCsv(RunPreset(Preset::kCountryShare, b, executor)));
}

TEST(QuerySource, DirectoryResolutionAndAmbiguity) {
  const fs::path dir = FreshDir("query_source_dir");
  const SnapshotFiles files = WriteTinySnapshots(dir);
  exec::Executor executor(2);
  const SnapshotBundle bundle = LoadBundleFromDir(dir, BundleOptions{}, executor);
  EXPECT_EQ(snapshot::EncodeSnapshot(snapshot::EncodeClassified(bundle.classified)),
            snapshot::EncodeSnapshot(snapshot::EncodeClassified(TinyExp().classified)));

  // A second world snapshot makes the directory ambiguous.
  fs::copy_file(files.world, dir / "world.other.snap");
  try {
    (void)LoadBundleFromDir(dir, BundleOptions{}, executor);
    FAIL() << "expected QueryError";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.code(), QueryErrorCode::kBadSource);
  }

  // An empty directory has no snapshots at all.
  try {
    (void)LoadBundleFromDir(FreshDir("query_source_empty"), BundleOptions{}, executor);
    FAIL() << "expected QueryError";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.code(), QueryErrorCode::kBadSource);
  }
}

TEST(QuerySource, CorruptSnapshotsFailCategorizedNeverCrash) {
  const fs::path dir = FreshDir("query_source_corrupt");
  const SnapshotFiles files = WriteTinySnapshots(dir);
  exec::Executor executor(2);
  const std::string good = ReadBytes(files.datasets);
  const fs::path bad = dir / "bad.snap";

  const auto load = [&] {
    (void)LoadBundleFromFiles(files.world, bad, "", BundleOptions{}, executor);
  };
  const auto reason_of = [&]() -> snapshot::SnapshotErrorReason {
    try {
      load();
    } catch (const snapshot::SnapshotError& e) {
      return e.reason();
    }
    ADD_FAILURE() << "expected SnapshotError";
    return snapshot::SnapshotErrorReason::kIo;
  };

  WriteBytes(bad, good.substr(0, good.size() / 2));
  EXPECT_EQ(reason_of(), snapshot::SnapshotErrorReason::kTruncated);

  std::string flipped = good;
  flipped[flipped.size() / 2] = static_cast<char>(flipped[flipped.size() / 2] ^ 0x5A);
  WriteBytes(bad, flipped);
  EXPECT_EQ(reason_of(), snapshot::SnapshotErrorReason::kChecksum);

  WriteBytes(bad, "XSPT" + good.substr(4));
  EXPECT_EQ(reason_of(), snapshot::SnapshotErrorReason::kBadMagic);

  fs::remove(bad);
  EXPECT_EQ(reason_of(), snapshot::SnapshotErrorReason::kIo);

  // StreamCorruptor damage (the chaos harness' garbler): any categorized
  // SnapshotError is acceptable, a crash or silent success is not.
  faultsim::FaultMix mix;
  mix.garble_bytes = 1.0;
  faultsim::StreamCorruptor corruptor(mix, /*seed=*/7);
  std::istringstream in(good);
  std::ostringstream garbled;
  (void)corruptor.Corrupt(in, garbled);
  WriteBytes(bad, garbled.str());
  EXPECT_THROW(load(), snapshot::SnapshotError);
}

TEST(QuerySource, StreamCheckpointIsAQuerySource) {
  const fs::path dir = FreshDir("query_source_ckpt");
  const SnapshotFiles files = WriteTinySnapshots(dir);
  const fs::path ckpt_dir = dir / "ckpt";
  exec::Executor executor(2);

  // Ingest a short stream and checkpoint the daemon's state. The store
  // is keyed by the same config hash LoadBundleFromCheckpoint derives
  // from the world snapshot.
  stream::CheckpointStore store(
      ckpt_dir,
      stream::StreamDaemon::ConfigHash(TinyExp().world.config(), {}));
  stream::DaemonConfig daemon_config;
  daemon_config.backpressure = stream::BackpressurePolicy::kBlock;
  stream::StreamDaemon daemon(TinyExp().world, {}, daemon_config, &store);
  std::thread producer([&] {
    const cdn::EventStreamGenerator generator(TinyExp().world,
                                              cdn::EventStreamConfig{.rounds = 2});
    for (std::string& frame : generator.GenerateFrames()) {
      (void)daemon.queue().Push(std::move(frame));
    }
    daemon.queue().Close();
  });
  daemon.RunUntilClosed();
  producer.join();
  ASSERT_TRUE(daemon.Checkpoint());

  const SnapshotBundle bundle =
      LoadBundleFromCheckpoint(files.world, ckpt_dir, BundleOptions{}, executor);
  EXPECT_EQ(snapshot::EncodeSnapshot(
                snapshot::EncodeDatasets(bundle.beacons, bundle.demand)),
            snapshot::EncodeSnapshot(snapshot::EncodeDatasets(daemon.ExportBeacons(),
                                                              daemon.ExportDemand())));
  EXPECT_EQ(snapshot::EncodeSnapshot(snapshot::EncodeClassified(bundle.classified)),
            snapshot::EncodeSnapshot(snapshot::EncodeClassified(daemon.ExportClassified())));

  // The joined tables answer plans directly from the restored state.
  const TableSet tables = BuildTables(bundle, executor);
  Plan plan;
  plan.aggregates.push_back({AggKind::kCount, "", 0.5, "n"});
  const Table out = Engine(tables.demand, executor).Run(plan);
  EXPECT_EQ(out.FindColumn("n")->u64[0], bundle.demand.block_count());

  // No usable checkpoint: wrong directory is a categorized bad-source.
  try {
    (void)LoadBundleFromCheckpoint(files.world, dir / "no_ckpt", BundleOptions{},
                                   executor);
    FAIL() << "expected QueryError";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.code(), QueryErrorCode::kBadSource);
  }
}

}  // namespace
}  // namespace cellspot::query
