#include "cellspot/geo/location.hpp"

#include <gtest/gtest.h>

namespace cellspot::geo {
namespace {

TEST(Haversine, ZeroForIdenticalPoints) {
  const LatLon p{52.5, 13.4};
  EXPECT_NEAR(HaversineKm(p, p), 0.0, 1e-9);
}

TEST(Haversine, KnownDistances) {
  // Fortaleza -> São Paulo: the paper's 1,470-mile anecdote (~2,365 km).
  const LatLon fortaleza{-3.73, -38.52};
  const LatLon sao_paulo{-23.55, -46.63};
  EXPECT_NEAR(HaversineKm(fortaleza, sao_paulo), 2365.0, 80.0);

  // London -> New York ~ 5,570 km.
  const LatLon london{51.51, -0.13};
  const LatLon nyc{40.71, -74.01};
  EXPECT_NEAR(HaversineKm(london, nyc), 5570.0, 60.0);
}

TEST(Haversine, SymmetricAndTriangleSane) {
  const LatLon a{10.0, 20.0};
  const LatLon b{-30.0, 120.0};
  const LatLon c{45.0, -60.0};
  EXPECT_DOUBLE_EQ(HaversineKm(a, b), HaversineKm(b, a));
  EXPECT_LE(HaversineKm(a, c), HaversineKm(a, b) + HaversineKm(b, c) + 1e-6);
  // Never exceeds half the Earth's circumference.
  EXPECT_LE(HaversineKm(a, b), 20038.0);
}

TEST(CountryCentroidTest, KnownCountries) {
  const LatLon br = CountryCentroid("BR");
  EXPECT_NEAR(br.lat_deg, -10.8, 1.0);
  const LatLon us = CountryCentroid("US");
  EXPECT_LT(us.lon_deg, -90.0);
}

TEST(CountryCentroidTest, FallsBackToContinent) {
  // Benin has no centroid entry but is in the country table (Africa).
  const LatLon bj = CountryCentroid("BJ");
  EXPECT_NEAR(bj.lat_deg, 2.0, 25.0);
  EXPECT_NEAR(bj.lon_deg, 21.0, 25.0);
}

TEST(CountryArea, KnownAndDefault) {
  EXPECT_GT(CountryAreaKm2("RU"), 1.5e7);
  EXPECT_LT(CountryAreaKm2("SG"), 1000.0);
  EXPECT_DOUBLE_EQ(CountryAreaKm2("??"), 300000.0);
}

TEST(CountrySpan, OrderedByArea) {
  EXPECT_GT(CountrySpanKm("BR"), CountrySpanKm("DE"));
  EXPECT_GT(CountrySpanKm("DE"), CountrySpanKm("SG"));
  // Brazil's span is ~3,300 km — the scale of the paper's anecdote.
  EXPECT_NEAR(CountrySpanKm("BR"), 3290.0, 150.0);
}

}  // namespace
}  // namespace cellspot::geo
