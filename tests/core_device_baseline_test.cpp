#include "cellspot/core/device_baseline.hpp"

#include <gtest/gtest.h>

#include "cellspot/analysis/experiment.hpp"
#include "cellspot/util/metrics.hpp"

namespace cellspot::core {
namespace {

using dataset::BeaconBlockStats;
using netaddr::Prefix;

TEST(DeviceTypeClassifier, RejectsBadConfig) {
  EXPECT_THROW(DeviceTypeClassifier({.threshold = 0.0}), std::invalid_argument);
  EXPECT_THROW(DeviceTypeClassifier({.threshold = 1.2}), std::invalid_argument);
  EXPECT_THROW(DeviceTypeClassifier({.threshold = 0.5, .min_hits = 0}),
               std::invalid_argument);
}

TEST(DeviceTypeClassifier, UsesMobileShareNotLabels) {
  BeaconBlockStats s;
  s.hits = 100;
  s.mobile_browser_hits = 80;
  s.netinfo_hits = 10;
  s.cellular_labels = 0;  // API says fixed...
  s.wifi_labels = 10;
  const DeviceTypeClassifier baseline;
  const SubnetClassifier api;
  EXPECT_TRUE(baseline.IsCellular(s));   // ...device type says cellular
  EXPECT_FALSE(api.IsCellular(s));
}

TEST(DeviceTypeClassifier, MinHitsGate) {
  BeaconBlockStats s;
  s.hits = 3;
  s.mobile_browser_hits = 3;
  EXPECT_TRUE(DeviceTypeClassifier({.threshold = 0.5, .min_hits = 3}).IsCellular(s));
  EXPECT_FALSE(DeviceTypeClassifier({.threshold = 0.5, .min_hits = 4}).IsCellular(s));
}

TEST(DeviceTypeClassifier, ClassifyPopulatesSharedResultType) {
  dataset::BeaconDataset beacons;
  BeaconBlockStats mobile_heavy;
  mobile_heavy.hits = 50;
  mobile_heavy.mobile_browser_hits = 48;
  beacons.Add(Prefix::Parse("198.51.101.0/24"), mobile_heavy);
  BeaconBlockStats desktop_heavy;
  desktop_heavy.hits = 50;
  desktop_heavy.mobile_browser_hits = 5;
  beacons.Add(Prefix::Parse("198.51.102.0/24"), desktop_heavy);

  const auto out = DeviceTypeClassifier().Classify(beacons);
  EXPECT_TRUE(out.IsCellular(Prefix::Parse("198.51.101.0/24")));
  EXPECT_FALSE(out.IsCellular(Prefix::Parse("198.51.102.0/24")));
  ASSERT_NE(out.RatioOf(Prefix::Parse("198.51.102.0/24")), nullptr);
  EXPECT_DOUBLE_EQ(*out.RatioOf(Prefix::Parse("198.51.102.0/24")), 0.1);
}

TEST(DeviceTypeClassifier, WorseThanApiOnRealWorld) {
  // The paper's §1 argument, quantified on the Tiny world: at the same
  // threshold the device-type baseline has far worse precision than the
  // Network Information classifier because of WiFi offload.
  const analysis::Experiment& e = analysis::RunExperiment(simnet::WorldConfig::Tiny());

  auto score = [&](const ClassifiedSubnets& classified) {
    util::ConfusionMatrix m;
    for (const simnet::Subnet& s : e.world.subnets()) {
      if (s.proxy_terminating || s.demand_du <= 0.0) continue;
      m.Add(s.truth_cellular, classified.IsCellular(s.block));
    }
    return m;
  };

  const auto api = score(e.classified);
  const auto device = score(DeviceTypeClassifier().Classify(e.beacons));
  EXPECT_GT(api.Precision(), 0.95);
  EXPECT_LT(device.Precision(), api.Precision() - 0.2);
  EXPECT_GT(api.F1(), device.F1());
}

}  // namespace
}  // namespace cellspot::core
