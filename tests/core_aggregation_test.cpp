#include "cellspot/core/aggregation.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "cellspot/util/rng.hpp"

namespace cellspot::core {
namespace {

using netaddr::IpAddress;
using netaddr::Prefix;

std::vector<Prefix> Parse(std::initializer_list<const char*> texts) {
  std::vector<Prefix> out;
  for (const char* t : texts) out.push_back(Prefix::Parse(t));
  return out;
}

TEST(CompressPrefixes, EmptyAndSingle) {
  EXPECT_TRUE(CompressPrefixes({}).empty());
  const auto one = CompressPrefixes(Parse({"10.0.0.0/24"}));
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].ToString(), "10.0.0.0/24");
}

TEST(CompressPrefixes, MergesSiblings) {
  const auto out = CompressPrefixes(Parse({"10.0.0.0/24", "10.0.1.0/24"}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ToString(), "10.0.0.0/23");
}

TEST(CompressPrefixes, MergesRecursively) {
  const auto out = CompressPrefixes(
      Parse({"10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ToString(), "10.0.0.0/22");
}

TEST(CompressPrefixes, DoesNotMergeNonSiblings) {
  // 10.0.1.0/24 and 10.0.2.0/24 are adjacent but not siblings.
  const auto out = CompressPrefixes(Parse({"10.0.1.0/24", "10.0.2.0/24"}));
  EXPECT_EQ(out.size(), 2u);
}

TEST(CompressPrefixes, RemovesCoveredAndDuplicates) {
  const auto out = CompressPrefixes(
      Parse({"10.0.0.0/22", "10.0.1.0/24", "10.0.1.0/24", "10.0.3.0/24"}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ToString(), "10.0.0.0/22");
}

TEST(CompressPrefixes, HandlesIpv6) {
  const auto out = CompressPrefixes(Parse({"2001:db8::/48", "2001:db8:1::/48"}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ToString(), "2001:db8::/47");
}

TEST(CompressPrefixes, MixedFamiliesStaySeparate) {
  const auto out = CompressPrefixes(Parse({"10.0.0.0/24", "2001:db8::/48"}));
  EXPECT_EQ(out.size(), 2u);
}

TEST(CompressPrefixes, ExactCoverProperty) {
  // Randomised: the compressed set covers exactly the same /24 blocks.
  util::Rng rng(424242);
  for (int round = 0; round < 10; ++round) {
    std::unordered_set<Prefix> input;
    const Prefix base = Prefix::Parse("172.0.0.0/12");
    for (int i = 0; i < 300; ++i) {
      input.insert(netaddr::NthBlock(base, rng.UniformInt(0, 4095)));
    }
    const std::vector<Prefix> in_vec(input.begin(), input.end());
    const auto out = CompressPrefixes(in_vec);
    EXPECT_LE(out.size(), input.size());
    // Every input block is covered by exactly one output prefix.
    for (const Prefix& block : input) {
      int covers = 0;
      for (const Prefix& p : out) covers += p.Covers(block) ? 1 : 0;
      EXPECT_EQ(covers, 1) << block.ToString();
    }
    // No output prefix covers a /24 outside the input.
    for (const Prefix& p : out) {
      for (std::uint64_t b = 0; b < netaddr::BlockCount(p); ++b) {
        EXPECT_TRUE(input.contains(netaddr::NthBlock(p, b))) << p.ToString();
      }
    }
  }
}

TEST(CompressPrefixes, Idempotent) {
  util::Rng rng(7);
  std::vector<Prefix> input;
  const Prefix base = Prefix::Parse("192.0.0.0/16");
  for (int i = 0; i < 120; ++i) {
    input.push_back(netaddr::NthBlock(base, rng.UniformInt(0, 255)));
  }
  const auto once = CompressPrefixes(input);
  const auto twice = CompressPrefixes(once);
  EXPECT_EQ(once, twice);
}

TEST(SummarizeCompressionTest, StatsReflectMerges) {
  const auto stats = SummarizeCompression(
      Parse({"10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24",
             "10.9.0.0/24"}));
  EXPECT_EQ(stats.input_count, 5u);
  EXPECT_EQ(stats.output_count, 2u);
  EXPECT_EQ(stats.shortest_prefix, 22);
  EXPECT_NEAR(stats.Ratio(), 2.5, 1e-12);
}

TEST(SummarizeCompressionTest, EmptyInput) {
  const auto stats = SummarizeCompression({});
  EXPECT_EQ(stats.output_count, 0u);
  EXPECT_DOUBLE_EQ(stats.Ratio(), 0.0);
  EXPECT_EQ(stats.shortest_prefix, 0);
}

}  // namespace
}  // namespace cellspot::core
