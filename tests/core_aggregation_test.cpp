#include "cellspot/core/aggregation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "cellspot/util/rng.hpp"

namespace cellspot::core {
namespace {

using netaddr::IpAddress;
using netaddr::Prefix;

std::vector<Prefix> Parse(std::initializer_list<const char*> texts) {
  std::vector<Prefix> out;
  for (const char* t : texts) out.push_back(Prefix::Parse(t));
  return out;
}

TEST(CompressPrefixes, EmptyAndSingle) {
  EXPECT_TRUE(CompressPrefixes({}).empty());
  const auto one = CompressPrefixes(Parse({"10.0.0.0/24"}));
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].ToString(), "10.0.0.0/24");
}

TEST(CompressPrefixes, MergesSiblings) {
  const auto out = CompressPrefixes(Parse({"10.0.0.0/24", "10.0.1.0/24"}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ToString(), "10.0.0.0/23");
}

TEST(CompressPrefixes, MergesRecursively) {
  const auto out = CompressPrefixes(
      Parse({"10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ToString(), "10.0.0.0/22");
}

TEST(CompressPrefixes, DoesNotMergeNonSiblings) {
  // 10.0.1.0/24 and 10.0.2.0/24 are adjacent but not siblings.
  const auto out = CompressPrefixes(Parse({"10.0.1.0/24", "10.0.2.0/24"}));
  EXPECT_EQ(out.size(), 2u);
}

TEST(CompressPrefixes, RemovesCoveredAndDuplicates) {
  const auto out = CompressPrefixes(
      Parse({"10.0.0.0/22", "10.0.1.0/24", "10.0.1.0/24", "10.0.3.0/24"}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ToString(), "10.0.0.0/22");
}

TEST(CompressPrefixes, HandlesIpv6) {
  const auto out = CompressPrefixes(Parse({"2001:db8::/48", "2001:db8:1::/48"}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ToString(), "2001:db8::/47");
}

TEST(CompressPrefixes, MixedFamiliesStaySeparate) {
  const auto out = CompressPrefixes(Parse({"10.0.0.0/24", "2001:db8::/48"}));
  EXPECT_EQ(out.size(), 2u);
}

TEST(CompressPrefixes, ExactCoverProperty) {
  // Randomised: the compressed set covers exactly the same /24 blocks.
  util::Rng rng(424242);
  for (int round = 0; round < 10; ++round) {
    std::unordered_set<Prefix> input;
    const Prefix base = Prefix::Parse("172.0.0.0/12");
    for (int i = 0; i < 300; ++i) {
      input.insert(netaddr::NthBlock(base, rng.UniformInt(0, 4095)));
    }
    const std::vector<Prefix> in_vec(input.begin(), input.end());
    const auto out = CompressPrefixes(in_vec);
    EXPECT_LE(out.size(), input.size());
    // Every input block is covered by exactly one output prefix.
    for (const Prefix& block : input) {
      int covers = 0;
      for (const Prefix& p : out) covers += p.Covers(block) ? 1 : 0;
      EXPECT_EQ(covers, 1) << block.ToString();
    }
    // No output prefix covers a /24 outside the input.
    for (const Prefix& p : out) {
      for (std::uint64_t b = 0; b < netaddr::BlockCount(p); ++b) {
        EXPECT_TRUE(input.contains(netaddr::NthBlock(p, b))) << p.ToString();
      }
    }
  }
}

TEST(CompressPrefixes, Idempotent) {
  util::Rng rng(7);
  std::vector<Prefix> input;
  const Prefix base = Prefix::Parse("192.0.0.0/16");
  for (int i = 0; i < 120; ++i) {
    input.push_back(netaddr::NthBlock(base, rng.UniformInt(0, 255)));
  }
  const auto once = CompressPrefixes(input);
  const auto twice = CompressPrefixes(once);
  EXPECT_EQ(once, twice);
}

// The ancestor-walk implementation CompressPrefixes shipped with before
// the sorted containment sweep replaced it (O(n * depth) pool probes vs
// one linear pass). Kept verbatim as the differential reference: both
// must agree on every input, or the sweep changed behaviour, not just
// cost.
Prefix ReferenceSibling(const Prefix& p) {
  return Prefix(p.address().WithBit(p.length() - 1, !p.address().GetBit(p.length() - 1)),
                p.length());
}

Prefix ReferenceParent(const Prefix& p) { return Prefix(p.address(), p.length() - 1); }

std::vector<Prefix> ReferenceCompressPrefixes(const std::vector<Prefix>& prefixes) {
  std::set<Prefix> pool(prefixes.begin(), prefixes.end());
  for (auto it = pool.begin(); it != pool.end();) {
    bool covered = false;
    Prefix walk = *it;
    while (walk.length() > 0) {
      walk = ReferenceParent(walk);
      if (pool.contains(walk)) {
        covered = true;
        break;
      }
    }
    it = covered ? pool.erase(it) : std::next(it);
  }
  int max_len = 0;
  for (const Prefix& p : pool) max_len = std::max(max_len, p.length());
  for (int len = max_len; len >= 1; --len) {
    std::vector<Prefix> to_merge;
    for (const Prefix& p : pool) {
      if (p.length() != len) continue;
      if (p.address().GetBit(len - 1)) continue;
      if (pool.contains(ReferenceSibling(p))) to_merge.push_back(p);
    }
    for (const Prefix& p : to_merge) {
      pool.erase(p);
      pool.erase(ReferenceSibling(p));
      pool.insert(ReferenceParent(p));
    }
  }
  return {pool.begin(), pool.end()};
}

TEST(CompressPrefixes, DifferentialAgainstAncestorWalkReference) {
  util::Rng rng(20260808);
  const Prefix v4_base = Prefix::Parse("10.0.0.0/12");
  for (int round = 0; round < 25; ++round) {
    std::vector<Prefix> input;
    // Dense v4 blocks plus random coarser ancestors: nesting, siblings
    // and duplicates all at once.
    for (int i = 0; i < 200; ++i) {
      Prefix p = netaddr::NthBlock(v4_base, rng.UniformInt(0, 4095));
      for (int up = static_cast<int>(rng.UniformInt(0, 6)); up > 0; --up) {
        p = ReferenceParent(p);
      }
      input.push_back(p);
    }
    // A sprinkling of v6 so both families flow through one call.
    for (int i = 0; i < 40; ++i) {
      Prefix p = Prefix::Parse("2001:db8:" + std::to_string(rng.UniformInt(0, 63)) +
                               "::/48");
      for (int up = static_cast<int>(rng.UniformInt(0, 3)); up > 0; --up) {
        p = ReferenceParent(p);
      }
      input.push_back(p);
    }
    EXPECT_EQ(CompressPrefixes(input), ReferenceCompressPrefixes(input))
        << "round " << round;
  }
}

TEST(SummarizeCompressionTest, StatsReflectMerges) {
  const auto stats = SummarizeCompression(
      Parse({"10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24",
             "10.9.0.0/24"}));
  EXPECT_EQ(stats.input_count, 5u);
  EXPECT_EQ(stats.output_count, 2u);
  EXPECT_EQ(stats.shortest_prefix, 22);
  EXPECT_NEAR(stats.Ratio(), 2.5, 1e-12);
}

TEST(SummarizeCompressionTest, EmptyInput) {
  const auto stats = SummarizeCompression({});
  EXPECT_EQ(stats.output_count, 0u);
  EXPECT_DOUBLE_EQ(stats.Ratio(), 0.0);
  EXPECT_EQ(stats.shortest_prefix, 0);
}

}  // namespace
}  // namespace cellspot::core
