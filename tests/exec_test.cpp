// The deterministic execution engine: chunking math, coverage and
// ordering guarantees of ParallelFor/ParallelReduce at several thread
// counts, and the CELLSPOT_THREADS / override plumbing.
#include "cellspot/exec/executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "cellspot/obs/metrics.hpp"

namespace cellspot::exec {
namespace {

TEST(ChunkCount, EdgeCases) {
  EXPECT_EQ(Executor::ChunkCount(0, 16), 0u);
  EXPECT_EQ(Executor::ChunkCount(1, 16), 1u);
  EXPECT_EQ(Executor::ChunkCount(16, 16), 1u);
  EXPECT_EQ(Executor::ChunkCount(17, 16), 2u);
  EXPECT_EQ(Executor::ChunkCount(32, 16), 2u);
  EXPECT_EQ(Executor::ChunkCount(5, 0), 5u);  // grain 0 behaves as 1
}

TEST(ParallelFor, EmptyRangeRunsNothing) {
  Executor ex(4);
  std::atomic<int> calls{0};
  ex.ParallelFor(0, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, SingleItem) {
  Executor ex(4);
  std::atomic<std::uint64_t> sum{0};
  ex.ParallelFor(1, 8, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    sum += 1;
  });
  EXPECT_EQ(sum.load(), 1u);
}

TEST(ParallelFor, EveryIndexCoveredExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    Executor ex(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> visits(kN);
    ex.ParallelFor(kN, 7, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) ++visits[i];
    });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, FewerItemsThanThreads) {
  Executor ex(8);
  std::atomic<std::uint64_t> sum{0};
  ex.ParallelFor(3, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) sum += i + 1;
  });
  EXPECT_EQ(sum.load(), 6u);  // 1 + 2 + 3
}

TEST(ParallelForChunks, ChunkIndicesMatchChunkMath) {
  Executor ex(4);
  constexpr std::size_t kN = 103;
  constexpr std::size_t kGrain = 10;
  std::mutex mu;
  std::set<std::size_t> seen;
  ex.ParallelForChunks(kN, kGrain,
                       [&](std::size_t begin, std::size_t end, std::size_t chunk) {
                         EXPECT_EQ(begin, chunk * kGrain);
                         EXPECT_EQ(end, std::min(kN, (chunk + 1) * kGrain));
                         const std::lock_guard<std::mutex> lock(mu);
                         seen.insert(chunk);
                       });
  EXPECT_EQ(seen.size(), Executor::ChunkCount(kN, kGrain));
}

TEST(ParallelReduce, MatchesSerialSumAtAnyThreadCount) {
  constexpr std::size_t kN = 4321;
  std::vector<double> values(kN);
  for (std::size_t i = 0; i < kN; ++i) values[i] = 1.0 / (1.0 + static_cast<double>(i));

  // Ordered fold: the reference is the same chunk-ordered sum, so the
  // comparison is exact (==), not approximate.
  const auto chunked_sum = [&](std::size_t grain) {
    double sum = 0.0;
    for (std::size_t begin = 0; begin < kN; begin += grain) {
      double partial = 0.0;
      for (std::size_t i = begin; i < std::min(kN, begin + grain); ++i) {
        partial += values[i];
      }
      sum += partial;
    }
    return sum;
  };

  for (const unsigned threads : {1u, 2u, 8u}) {
    Executor ex(threads);
    const double sum = ex.ParallelReduce(
        kN, 64, 0.0,
        [&](std::size_t begin, std::size_t end) {
          double partial = 0.0;
          for (std::size_t i = begin; i < end; ++i) partial += values[i];
          return partial;
        },
        [](double acc, double partial) { return acc + partial; });
    EXPECT_EQ(sum, chunked_sum(64)) << "threads " << threads;
  }
}

TEST(ParallelReduce, OrderedFoldPreservesChunkOrder) {
  Executor ex(8);
  const auto concat = ex.ParallelReduce(
      26, 3, std::string(),
      [](std::size_t begin, std::size_t end) {
        std::string s;
        for (std::size_t i = begin; i < end; ++i) {
          s.push_back(static_cast<char>('a' + i));
        }
        return s;
      },
      [](std::string acc, std::string partial) { return acc + partial; });
  EXPECT_EQ(concat, "abcdefghijklmnopqrstuvwxyz");
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  Executor ex(4);
  const int result = ex.ParallelReduce(
      0, 8, 42, [](std::size_t, std::size_t) { return 0; },
      [](int acc, int partial) { return acc + partial; });
  EXPECT_EQ(result, 42);
}

TEST(DefaultThreadCount, EnvParsingAndOverride) {
  // Programmatic override wins and 0 clears it.
  Executor::SetDefaultThreadCount(3);
  EXPECT_EQ(Executor::DefaultThreadCount(), 3u);
  Executor::SetDefaultThreadCount(0);

  ::setenv("CELLSPOT_THREADS", "5", 1);
  EXPECT_EQ(Executor::DefaultThreadCount(), 5u);

  ::setenv("CELLSPOT_THREADS", "zero", 1);
  EXPECT_THROW((void)Executor::DefaultThreadCount(), std::invalid_argument);
  ::setenv("CELLSPOT_THREADS", "0", 1);
  EXPECT_THROW((void)Executor::DefaultThreadCount(), std::invalid_argument);

  ::unsetenv("CELLSPOT_THREADS");
  EXPECT_GE(Executor::DefaultThreadCount(), 1u);
}

TEST(Executor, ZeroThreadsUsesDefault) {
  Executor::SetDefaultThreadCount(2);
  Executor ex;
  EXPECT_EQ(ex.thread_count(), 2u);
  Executor::SetDefaultThreadCount(0);
}

// ---- batch-shape observability ---------------------------------------------
// Locks the span/counter contract for the degenerate batch shapes: an
// empty range must not report a batch at all, while oversized grains and
// thread counts must still report exactly one job with accurate items.

std::uint64_t CounterValue(const obs::MetricsSnapshot& snap, std::string_view name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const obs::MetricsSnapshot::SpanRow* FindSpan(const obs::MetricsSnapshot& snap,
                                              std::string_view path) {
  for (const auto& s : snap.spans) {
    if (s.path == path) return &s;
  }
  return nullptr;
}

TEST(BatchObservability, EmptyRangeEmitsNoSpanOrCounters) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.ResetForTest();
  Executor ex(4);
  ex.ParallelFor(0, 16, [](std::size_t, std::size_t) { FAIL(); });
  ex.ParallelForChunks(0, 1, [](std::size_t, std::size_t, std::size_t) { FAIL(); });
  const auto snap = reg.Snapshot();
  EXPECT_EQ(CounterValue(snap, "exec.jobs"), 0u);
  EXPECT_EQ(CounterValue(snap, "exec.chunks"), 0u);
  EXPECT_EQ(FindSpan(snap, "exec.batch"), nullptr)
      << "an empty batch must not open an exec.batch span";
}

TEST(BatchObservability, GrainLargerThanRangeIsOneChunk) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.ResetForTest();
  Executor ex(4);
  std::atomic<int> calls{0};
  ex.ParallelForChunks(3, 1000, [&](std::size_t begin, std::size_t end, std::size_t chunk) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 3u);
    EXPECT_EQ(chunk, 0u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
  const auto snap = reg.Snapshot();
  EXPECT_EQ(CounterValue(snap, "exec.jobs"), 1u);
  EXPECT_EQ(CounterValue(snap, "exec.chunks"), 1u);
  const auto* span = FindSpan(snap, "exec.batch");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->count, 1u);
  EXPECT_EQ(span->items, 3u);  // items reflect the range, not the grain
}

TEST(BatchObservability, MoreThreadsThanItemsCoversEachIndexOnce) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.ResetForTest();
  Executor ex(8);
  std::mutex mu;
  std::vector<std::size_t> seen;
  ex.ParallelFor(3, 1, [&](std::size_t begin, std::size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = begin; i < end; ++i) seen.push_back(i);
  });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
  const auto snap = reg.Snapshot();
  EXPECT_EQ(CounterValue(snap, "exec.jobs"), 1u);
  EXPECT_EQ(CounterValue(snap, "exec.chunks"), 3u);
  const auto* span = FindSpan(snap, "exec.batch");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->count, 1u);
  EXPECT_EQ(span->items, 3u);
}

}  // namespace
}  // namespace cellspot::exec
