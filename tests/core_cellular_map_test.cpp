#include "cellspot/core/cellular_map.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cellspot/analysis/experiment.hpp"
#include "cellspot/util/error.hpp"

namespace cellspot::core {
namespace {

using netaddr::IpAddress;
using netaddr::Prefix;

TEST(CellularMap, EmptyContainsNothing) {
  CellularMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.Contains(IpAddress::Parse("8.8.8.8")));
}

TEST(CellularMap, FromPrefixesLookups) {
  const auto map = CellularMap::FromPrefixes(
      {Prefix::Parse("203.0.114.0/24"), Prefix::Parse("2001:db8:1::/48")});
  EXPECT_TRUE(map.Contains(IpAddress::Parse("203.0.114.99")));
  EXPECT_FALSE(map.Contains(IpAddress::Parse("203.0.115.99")));
  EXPECT_TRUE(map.Contains(IpAddress::Parse("2001:db8:1::77")));
  EXPECT_FALSE(map.Contains(IpAddress::Parse("2001:db8:2::77")));
}

TEST(CellularMap, AggregationPreservesMembership) {
  std::vector<Prefix> blocks;
  const auto parent = Prefix::Parse("198.51.0.0/20");
  for (std::uint64_t i = 0; i < 16; ++i) blocks.push_back(netaddr::NthBlock(parent, i));
  const auto aggregated = CellularMap::FromPrefixes(blocks, /*aggregate=*/true);
  const auto raw = CellularMap::FromPrefixes(blocks, /*aggregate=*/false);
  EXPECT_EQ(aggregated.size(), 1u);
  EXPECT_EQ(raw.size(), 16u);
  for (std::uint64_t i = 0; i < 16; ++i) {
    const auto probe = netaddr::NthAddress(netaddr::NthBlock(parent, i), 42);
    EXPECT_EQ(aggregated.Contains(probe), raw.Contains(probe));
    EXPECT_TRUE(aggregated.Contains(probe));
  }
}

TEST(CellularMap, ContainsBlockUsesCoverSemantics) {
  const auto map = CellularMap::FromPrefixes({Prefix::Parse("10.32.0.0/16")});
  EXPECT_TRUE(map.ContainsBlock(Prefix::Parse("10.32.7.0/24")));
  EXPECT_FALSE(map.ContainsBlock(Prefix::Parse("10.33.0.0/24")));
  // A block coarser than every mapped prefix is not (fully) contained.
  EXPECT_FALSE(map.ContainsBlock(Prefix::Parse("10.0.0.0/8")));
}

TEST(CellularMap, SaveLoadRoundTrip) {
  const auto map = CellularMap::FromPrefixes(
      {Prefix::Parse("203.0.114.0/24"), Prefix::Parse("2001:db8::/47")});
  std::stringstream ss;
  map.Save(ss);
  const auto loaded = CellularMap::Load(ss);
  EXPECT_EQ(loaded.prefixes(), map.prefixes());
}

TEST(CellularMap, LoadSkipsCommentsAndRejectsGarbage) {
  std::stringstream good("# map v1\n\n203.0.114.0/24\n  2001:db8::/48  \n");
  const auto map = CellularMap::Load(good);
  EXPECT_EQ(map.size(), 2u);

  std::stringstream bad("not-a-prefix\n");
  EXPECT_THROW(CellularMap::Load(bad), ParseError);
}

TEST(CellularMap, DeduplicatesInput) {
  const auto map = CellularMap::FromPrefixes(
      {Prefix::Parse("203.0.114.0/24"), Prefix::Parse("203.0.114.0/24")},
      /*aggregate=*/false);
  EXPECT_EQ(map.size(), 1u);
}

TEST(CellularMap, FromClassificationMatchesClassifier) {
  const analysis::Experiment& e = analysis::RunExperiment(simnet::WorldConfig::Tiny());
  const auto map = CellularMap::FromClassification(e.classified);
  ASSERT_FALSE(map.empty());
  // Every classified cellular block resolves as cellular through the map;
  // sampled non-cellular blocks do not.
  std::size_t checked = 0;
  for (const netaddr::Prefix& block : e.classified.cellular()) {
    EXPECT_TRUE(map.Contains(netaddr::NthAddress(block, 9))) << block.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 50u);
  std::size_t negatives = 0;
  for (const auto& [block, ratio] : e.classified.ratios()) {
    if (e.classified.IsCellular(block)) continue;
    EXPECT_FALSE(map.ContainsBlock(block)) << block.ToString();
    if (++negatives > 500) break;
  }
}

}  // namespace
}  // namespace cellspot::core
