#include "cellspot/core/cellular_map.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "cellspot/analysis/experiment.hpp"
#include "cellspot/util/error.hpp"
#include "cellspot/util/ingest.hpp"

namespace cellspot::core {
namespace {

using netaddr::IpAddress;
using netaddr::Prefix;

TEST(CellularMap, EmptyContainsNothing) {
  CellularMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.Contains(IpAddress::Parse("8.8.8.8")));
}

TEST(CellularMap, FromPrefixesLookups) {
  const auto map = CellularMap::FromPrefixes(
      {Prefix::Parse("203.0.114.0/24"), Prefix::Parse("2001:db8:1::/48")});
  EXPECT_TRUE(map.Contains(IpAddress::Parse("203.0.114.99")));
  EXPECT_FALSE(map.Contains(IpAddress::Parse("203.0.115.99")));
  EXPECT_TRUE(map.Contains(IpAddress::Parse("2001:db8:1::77")));
  EXPECT_FALSE(map.Contains(IpAddress::Parse("2001:db8:2::77")));
}

TEST(CellularMap, AggregationPreservesMembership) {
  std::vector<Prefix> blocks;
  const auto parent = Prefix::Parse("198.51.0.0/20");
  for (std::uint64_t i = 0; i < 16; ++i) blocks.push_back(netaddr::NthBlock(parent, i));
  const auto aggregated = CellularMap::FromPrefixes(blocks, /*aggregate=*/true);
  const auto raw = CellularMap::FromPrefixes(blocks, /*aggregate=*/false);
  EXPECT_EQ(aggregated.size(), 1u);
  EXPECT_EQ(raw.size(), 16u);
  for (std::uint64_t i = 0; i < 16; ++i) {
    const auto probe = netaddr::NthAddress(netaddr::NthBlock(parent, i), 42);
    EXPECT_EQ(aggregated.Contains(probe), raw.Contains(probe));
    EXPECT_TRUE(aggregated.Contains(probe));
  }
}

TEST(CellularMap, ContainsBlockUsesCoverSemantics) {
  const auto map = CellularMap::FromPrefixes({Prefix::Parse("10.32.0.0/16")});
  EXPECT_TRUE(map.ContainsBlock(Prefix::Parse("10.32.7.0/24")));
  EXPECT_FALSE(map.ContainsBlock(Prefix::Parse("10.33.0.0/24")));
  // A block coarser than every mapped prefix is not (fully) contained.
  EXPECT_FALSE(map.ContainsBlock(Prefix::Parse("10.0.0.0/8")));
}

TEST(CellularMap, SaveLoadRoundTrip) {
  const auto map = CellularMap::FromPrefixes(
      {Prefix::Parse("203.0.114.0/24"), Prefix::Parse("2001:db8::/47")});
  std::stringstream ss;
  map.Save(ss);
  const auto loaded = CellularMap::Load(ss);
  EXPECT_EQ(loaded.prefixes(), map.prefixes());
}

TEST(CellularMap, LoadSkipsCommentsAndRejectsGarbage) {
  std::stringstream good("# map v1\n\n203.0.114.0/24\n  2001:db8::/48  \n");
  const auto map = CellularMap::Load(good);
  EXPECT_EQ(map.size(), 2u);

  std::stringstream bad("not-a-prefix\n");
  EXPECT_THROW(CellularMap::Load(bad), ParseError);
}

TEST(CellularMap, StrictLoadAnnotatesLineNumbers) {
  std::stringstream bad("203.0.114.0/24\n\nnot-a-prefix\n");
  try {
    (void)CellularMap::Load(bad);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(CellularMap, SkipPolicyDropsBadLinesAndQuarantines) {
  std::stringstream in("203.0.114.0/24\nnot-a-prefix\n0.0.0.0/0\n2001:db8::/48\n");
  std::ostringstream quarantine;
  util::LoadOptions options;
  options.policy = util::IngestPolicy::kQuarantine;
  options.quarantine = &quarantine;
  const auto map = CellularMap::Load(in, /*aggregate=*/false, options);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_TRUE(map.Contains(IpAddress::Parse("203.0.114.1")));
  EXPECT_TRUE(map.Contains(IpAddress::Parse("2001:db8::1")));
  // Both rejects land in the quarantine stream verbatim.
  EXPECT_NE(quarantine.str().find("not-a-prefix"), std::string::npos);
  EXPECT_NE(quarantine.str().find("0.0.0.0/0"), std::string::npos);
}

TEST(CellularMap, SkipPolicyHonoursErrorBudget) {
  std::stringstream in("junk1\njunk2\njunk3\n203.0.114.0/24\n");
  util::LoadOptions options;
  options.policy = util::IngestPolicy::kSkip;
  options.limits.max_error_rate = 0.25;
  EXPECT_THROW((void)CellularMap::Load(in, false, options), util::IngestBudgetError);
}

TEST(CellularMap, SharedReportAccumulatesAcrossLoads) {
  util::IngestReport report(util::IngestPolicy::kSkip);
  util::LoadOptions options;
  options.report = &report;
  std::stringstream a("203.0.114.0/24\nbad-line\n");
  std::stringstream b("also-bad\n198.51.100.0/24\n");
  (void)CellularMap::Load(a, false, options);
  (void)CellularMap::Load(b, false, options);
  EXPECT_EQ(report.lines_rejected(), 2u);
}

TEST(CellularMap, RejectsZeroLengthPrefixEverywhere) {
  // Construction: /0 would claim the entire address space.
  EXPECT_THROW((void)CellularMap::FromPrefixes({Prefix::Parse("0.0.0.0/0")}),
               std::invalid_argument);
  EXPECT_THROW((void)CellularMap::FromPrefixes({Prefix::Parse("::/0")}),
               std::invalid_argument);
  // Load: a /0 line is malformed input, same as garbage.
  std::stringstream in("0.0.0.0/0\n");
  EXPECT_THROW((void)CellularMap::Load(in), ParseError);

  // And therefore ContainsBlock can never claim every block wholesale.
  const auto map = CellularMap::FromPrefixes({Prefix::Parse("10.0.0.0/8")});
  EXPECT_FALSE(map.ContainsBlock(Prefix::Parse("203.0.113.0/24")));
  EXPECT_TRUE(map.ContainsBlock(Prefix::Parse("10.1.2.0/24")));
}

TEST(CellularMap, BatchContainsMatchesSingle) {
  const auto map = CellularMap::FromPrefixes(
      {Prefix::Parse("203.0.114.0/24"), Prefix::Parse("2001:db8:1::/48")});
  const std::vector<IpAddress> addrs = {
      IpAddress::Parse("203.0.114.99"), IpAddress::Parse("203.0.115.99"),
      IpAddress::Parse("2001:db8:1::77"), IpAddress::Parse("2001:db8:2::77")};
  // vector<bool> has no contiguous storage; batch through a byte buffer.
  std::unique_ptr<bool[]> out(new bool[addrs.size()]);
  map.ContainsBatch(addrs, std::span<bool>(out.get(), addrs.size()));
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    EXPECT_EQ(out[i], map.Contains(addrs[i])) << addrs[i].ToString();
  }
}

TEST(CellularMap, DeduplicatesInput) {
  const auto map = CellularMap::FromPrefixes(
      {Prefix::Parse("203.0.114.0/24"), Prefix::Parse("203.0.114.0/24")},
      /*aggregate=*/false);
  EXPECT_EQ(map.size(), 1u);
}

TEST(CellularMap, FromClassificationMatchesClassifier) {
  const analysis::Experiment& e = analysis::RunExperiment(simnet::WorldConfig::Tiny());
  const auto map = CellularMap::FromClassification(e.classified);
  ASSERT_FALSE(map.empty());
  // Every classified cellular block resolves as cellular through the map;
  // sampled non-cellular blocks do not.
  std::size_t checked = 0;
  for (const netaddr::Prefix& block : e.classified.cellular()) {
    EXPECT_TRUE(map.Contains(netaddr::NthAddress(block, 9))) << block.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 50u);
  std::size_t negatives = 0;
  for (const auto& [block, ratio] : e.classified.ratios()) {
    if (e.classified.IsCellular(block)) continue;
    EXPECT_FALSE(map.ContainsBlock(block)) << block.ToString();
    if (++negatives > 500) break;
  }
}

}  // namespace
}  // namespace cellspot::core
