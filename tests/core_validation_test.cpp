#include "cellspot/core/validation.hpp"

#include <gtest/gtest.h>

namespace cellspot::core {
namespace {

using dataset::BeaconBlockStats;
using netaddr::Prefix;

BeaconBlockStats Stats(std::uint64_t netinfo, std::uint64_t cellular) {
  BeaconBlockStats s;
  s.hits = netinfo * 4;
  s.netinfo_hits = netinfo;
  s.cellular_labels = cellular;
  s.wifi_labels = netinfo - cellular;
  return s;
}

struct Fixture {
  dataset::BeaconDataset beacons;
  dataset::DemandDataset demand;
  CarrierGroundTruth truth = {.label = "Test", .blocks = {}};

  Fixture() {
    // Two detected cellular (one high demand), one missed cellular (no
    // beacons), one fixed correctly negative, one fixed false positive.
    Add("198.51.101.0/24", true, Stats(50, 48), 40.0);
    Add("198.51.102.0/24", true, Stats(10, 9), 1.0);
    Add("198.51.103.0/24", true, std::nullopt, 5.0);   // missed: no beacons
    Add("198.51.104.0/24", false, Stats(60, 2), 50.0);
    Add("198.51.105.0/24", false, Stats(20, 18), 0.5);  // noisy FP
  }

  void Add(const char* text, bool cellular, std::optional<BeaconBlockStats> stats,
           double du) {
    const auto block = Prefix::Parse(text);
    truth.blocks.Emplace(block, cellular);
    if (stats) beacons.Add(block, *stats);
    if (du > 0.0) demand.Add(block, du);
  }
};

TEST(Validate, CidrConfusionCounts) {
  Fixture f;
  const auto classified = SubnetClassifier().Classify(f.beacons);
  const ValidationResult r = Validate(f.truth, classified, f.demand);
  EXPECT_DOUBLE_EQ(r.by_cidr.tp(), 2.0);
  EXPECT_DOUBLE_EQ(r.by_cidr.fn(), 1.0);  // the beacon-less cellular block
  EXPECT_DOUBLE_EQ(r.by_cidr.tn(), 1.0);
  EXPECT_DOUBLE_EQ(r.by_cidr.fp(), 1.0);
}

TEST(Validate, DemandWeighting) {
  Fixture f;
  const auto classified = SubnetClassifier().Classify(f.beacons);
  const ValidationResult r = Validate(f.truth, classified, f.demand);
  EXPECT_DOUBLE_EQ(r.by_demand.tp(), 41.0);
  EXPECT_DOUBLE_EQ(r.by_demand.fn(), 5.0);
  EXPECT_DOUBLE_EQ(r.by_demand.tn(), 50.0);
  EXPECT_DOUBLE_EQ(r.by_demand.fp(), 0.5);
  // Demand-weighted recall exceeds CIDR recall: the missed block is
  // low-demand relative to the detected ones (the paper's Table 3
  // asymmetry).
  EXPECT_GT(r.by_demand.Recall(), r.by_cidr.Recall());
}

TEST(Validate, UnobservedTruthCountsAsNegative) {
  CarrierGroundTruth truth = {.label = "x", .blocks = {}};
  truth.blocks.Emplace(Prefix::Parse("203.0.114.0/24"), true);
  dataset::BeaconDataset beacons;
  dataset::DemandDataset demand;
  const auto classified = SubnetClassifier().Classify(beacons);
  const ValidationResult r = Validate(truth, classified, demand);
  EXPECT_DOUBLE_EQ(r.by_cidr.fn(), 1.0);
  EXPECT_DOUBLE_EQ(r.by_cidr.tp(), 0.0);
  // No demand -> the demand-weighted matrix stays empty.
  EXPECT_DOUBLE_EQ(r.by_demand.total(), 0.0);
}

TEST(ThresholdSweep, RejectsTooFewSteps) {
  Fixture f;
  EXPECT_THROW(ThresholdSweep(f.truth, f.beacons, f.demand, 1), std::invalid_argument);
}

TEST(ThresholdSweep, CoversUnitInterval) {
  Fixture f;
  const auto sweep = ThresholdSweep(f.truth, f.beacons, f.demand, 20);
  ASSERT_EQ(sweep.size(), 20u);
  EXPECT_DOUBLE_EQ(sweep.front().threshold, 0.05);
  EXPECT_DOUBLE_EQ(sweep.back().threshold, 1.0);
}

TEST(ThresholdSweep, MatchesDirectValidationAtHalf) {
  Fixture f;
  const auto sweep = ThresholdSweep(f.truth, f.beacons, f.demand, 10);
  const auto classified = SubnetClassifier({.threshold = 0.5}).Classify(f.beacons);
  const ValidationResult direct = Validate(f.truth, classified, f.demand);
  // Step 5 of 10 is threshold 0.5.
  EXPECT_NEAR(sweep[4].f1_cidr, direct.by_cidr.F1(), 1e-12);
  EXPECT_NEAR(sweep[4].precision, direct.by_cidr.Precision(), 1e-12);
}

TEST(ThresholdSweep, StableMidRangePlateau) {
  // A clean separation (cellular ratios ~0.95, fixed ~0.03) must produce
  // identical F1 across mid thresholds — the paper's Fig 3 robustness.
  CarrierGroundTruth truth = {.label = "plateau", .blocks = {}};
  dataset::BeaconDataset beacons;
  dataset::DemandDataset demand;
  for (int i = 0; i < 20; ++i) {
    const auto block = netaddr::Prefix(
        netaddr::IpAddress::V4(0xC6336500u + static_cast<std::uint32_t>(i) * 256), 24);
    const bool cellular = i < 10;
    truth.blocks.Emplace(block, cellular);
    beacons.Add(block, cellular ? Stats(100, 95) : Stats(100, 3));
    demand.Add(block, 1.0);
  }
  const auto sweep = ThresholdSweep(truth, beacons, demand, 50);
  for (const SweepPoint& p : sweep) {
    if (p.threshold >= 0.1 && p.threshold <= 0.9) {
      EXPECT_DOUBLE_EQ(p.f1_cidr, 1.0) << p.threshold;
    }
  }
  // Beyond the cellular ratio, recall collapses.
  EXPECT_LT(sweep.back().f1_cidr, 0.2);
}

}  // namespace
}  // namespace cellspot::core
