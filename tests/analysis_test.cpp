// End-to-end tests of the experiment runner and report builders on the
// Tiny world (6 countries, ~10k blocks). Paper-world shape checks live in
// the bench harnesses; here we verify structural invariants.
#include "cellspot/analysis/reports.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace cellspot::analysis {
namespace {

const Experiment& TinyExp() {
  static const Experiment exp = RunExperiment(simnet::WorldConfig::Tiny());
  return exp;
}

TEST(RunExperiment, ProducesConsistentPipeline) {
  const Experiment& e = TinyExp();
  EXPECT_GT(e.beacons.block_count(), 100u);
  EXPECT_NEAR(e.demand.total(), dataset::kTotalDemandUnits, 1e-6);
  EXPECT_GT(e.classified.cellular().size(), 10u);
  EXPECT_GE(e.candidates.size(), e.filtered.kept.size());
  EXPECT_EQ(e.filtered.input_count,
            e.filtered.kept.size() + e.filtered.removed_low_demand +
                e.filtered.removed_low_hits + e.filtered.removed_class);
}

TEST(RunExperiment, ClassifierPrecisionAgainstWorldTruth) {
  // The paper's central claim: cellular labels are trustworthy, so
  // precision against ground truth is very high even though recall is a
  // lower bound. Check over every classified block in the world.
  const Experiment& e = TinyExp();
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t proxy_fp = 0;
  for (const netaddr::Prefix& block : e.classified.cellular()) {
    const simnet::Subnet* s = e.world.FindSubnet(block);
    ASSERT_NE(s, nullptr);
    if (s->truth_cellular) {
      ++tp;
    } else if (s->proxy_terminating) {
      ++proxy_fp;  // expected: the §5 false positives the AS filters kill
    } else {
      ++fp;
    }
  }
  ASSERT_GT(tp, 0u);
  EXPECT_GT(static_cast<double>(tp) / (tp + fp), 0.97);
  EXPECT_GT(proxy_fp, 0u);
}

TEST(RunExperiment, FiltersKillProxyAndCloudAses) {
  const Experiment& e = TinyExp();
  for (const core::AsAggregate& as : e.filtered.kept) {
    const simnet::OperatorInfo* op = e.world.FindOperator(as.asn);
    ASSERT_NE(op, nullptr);
    EXPECT_NE(op->kind, asdb::OperatorKind::kMobileProxy) << as.asn;
    EXPECT_NE(op->kind, asdb::OperatorKind::kCloudHosting) << as.asn;
  }
}

TEST(BuildCarrierTruthTest, MatchesWorldSubnets) {
  const Experiment& e = TinyExp();
  ASSERT_FALSE(e.world.validation_carriers().empty());
  const auto carrier = e.world.validation_carriers().front();
  const auto truth = BuildCarrierTruth(e.world, carrier.asn, "X");
  const simnet::OperatorInfo* op = e.world.FindOperator(carrier.asn);
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(truth.blocks.size(), e.world.SubnetsOf(*op).size());
  EXPECT_EQ(truth.label, "X");
  // Unknown ASN yields an empty list.
  EXPECT_TRUE(BuildCarrierTruth(e.world, 4294900000u, "none").blocks.empty());
}

TEST(SummarizeDatasetsTest, CoverageWithinBounds) {
  const auto s = SummarizeDatasets(TinyExp());
  EXPECT_GT(s.beacon_v4_blocks, 0u);
  EXPECT_GT(s.demand_v4_blocks, s.beacon_v4_blocks / 2);
  EXPECT_GT(s.beacon_coverage_of_demand_v4, 0.4);
  EXPECT_LT(s.beacon_coverage_of_demand_v4, 1.0);
  EXPECT_GT(s.beacon_coverage_of_demand_weight, s.beacon_coverage_of_demand_v4);
}

TEST(ContinentSubnetReportTest, CountsMatchClassifier) {
  const Experiment& e = TinyExp();
  const auto rows = ContinentSubnetReport(e);
  std::size_t cell_v4 = 0;
  for (const auto& row : rows) {
    cell_v4 += row.cell_v4;
    EXPECT_GE(row.pct_active_v4, 0.0);
    EXPECT_LE(row.pct_active_v4, 1.0);
  }
  // Every classified v4 cellular block maps to some continent (all Tiny
  // operators have registry records).
  EXPECT_EQ(cell_v4, e.classified.cellular_count(netaddr::Family::kIpv4));
}

TEST(ContinentAsReportTest, TotalsMatchKeptSet) {
  const Experiment& e = TinyExp();
  const auto rows = ContinentAsReport(e);
  std::size_t total = 0;
  for (const auto& row : rows) total += row.as_count;
  EXPECT_EQ(total, e.filtered.kept.size());
}

TEST(RankAsesByCellDemandTest, SortedAndNormalised) {
  const auto ranked = RankAsesByCellDemand(TinyExp());
  ASSERT_GT(ranked.size(), 5u);
  double total_share = 0.0;
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i].cell_demand_du, ranked[i - 1].cell_demand_du);
  }
  for (const RankedAs& r : ranked) total_share += r.share_of_global_cell;
  EXPECT_NEAR(total_share, 1.0, 1e-9);
}

TEST(CountryDemandReportTest, SumsToGlobalDemand) {
  const Experiment& e = TinyExp();
  const auto countries = CountryDemandReport(e);
  double total = 0.0;
  for (const CountryDemand& cd : countries) {
    EXPECT_GE(cd.cell_du, 0.0);
    EXPECT_LE(cd.cell_du, cd.total_du + 1e-9);
    total += cd.total_du;
  }
  // Infrastructure ASes carry some demand too, so the country total is
  // slightly below the normalised global total.
  EXPECT_GT(total, dataset::kTotalDemandUnits * 0.95);
  EXPECT_LE(total, dataset::kTotalDemandUnits + 1e-6);
}

TEST(CountryDemandReportTest, HighlightFractionsSurviveMeasurement) {
  // Ghana-like (96%) and US-like (17%) cellular fractions must re-emerge
  // from the measured path, not just the config.
  const auto countries = CountryDemandReport(TinyExp());
  for (const CountryDemand& cd : countries) {
    if (cd.iso == "GH") {
      EXPECT_GT(cd.CellFraction(), 0.7);
    }
    if (cd.iso == "US") {
      EXPECT_GT(cd.CellFraction(), 0.08);
      EXPECT_LT(cd.CellFraction(), 0.30);
    }
    if (cd.iso == "DE") {
      EXPECT_LT(cd.CellFraction(), 0.25);
    }
  }
}

TEST(ContinentDemandReportTest, SharesSumToOne) {
  const auto rows = ContinentDemandReport(TinyExp());
  double share = 0.0;
  for (const auto& row : rows) share += row.share_of_global_cell;
  EXPECT_NEAR(share, 1.0, 1e-9);
}

TEST(RatioCdfReportTest, Bimodal) {
  const auto r = RatioCdfReport(TinyExp());
  ASSERT_FALSE(r.v4_subnets.empty());
  // Most subnets score < 0.1; a small but real share scores > 0.9.
  EXPECT_GT(r.v4_subnets.At(0.1), 0.80);
  EXPECT_LT(r.v4_subnets.At(0.9), 1.0);
}

TEST(CandidateAsReportTest, MatchesCandidateCount) {
  const Experiment& e = TinyExp();
  const auto r = CandidateAsReport(e);
  EXPECT_EQ(r.cell_demand.total_weight(), static_cast<double>(e.candidates.size()));
}

TEST(MixedOperatorReportTest, CountsAndShares) {
  const Experiment& e = TinyExp();
  const auto r = MixedOperatorReport(e);
  EXPECT_EQ(r.mixed_count + r.dedicated_count, e.filtered.kept.size());
  EXPECT_GE(r.mixed_share_of_cell_demand, 0.0);
  EXPECT_LE(r.mixed_share_of_cell_demand, 1.0);
  EXPECT_FALSE(r.cfd.empty());
}

TEST(OperatorRatioBreakdownTest, SortedAndScoped) {
  const Experiment& e = TinyExp();
  ASSERT_FALSE(e.filtered.kept.empty());
  const auto asn = e.filtered.kept.front().asn;
  const auto points = OperatorRatioBreakdown(e, asn);
  ASSERT_FALSE(points.empty());
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].ratio, points[i - 1].ratio);
  }
}

TEST(SubnetConcentrationReportTest, CellularConcentratedFixedGradual) {
  const Experiment& e = TinyExp();
  // Fig 8 uses the Carrier-A archetype: a mixed carrier in a fixed-line
  // dominant market, where CGNAT concentration is extreme.
  const simnet::OperatorInfo* carrier_a = FindCarrier(e, 'A');
  ASSERT_NE(carrier_a, nullptr);
  const auto conc = SubnetConcentrationReport(e, carrier_a->asn);
  ASSERT_GT(conc.cellular_demands.size(), 3u);
  ASSERT_GT(conc.fixed_demands.size(), 5u);
  EXPECT_GT(conc.blocks_for_99pct_cell, 0u);
  // Nearly all cellular demand sits in a handful of gateway blocks while
  // the carrier's fixed side spreads over many more.
  EXPECT_LT(conc.blocks_for_99pct_cell, conc.cellular_demands.size());
  EXPECT_GT(conc.fixed_demands.size(), 4 * conc.blocks_for_99pct_cell);
  // Gini quantifies Finding 3: cellular demand is far more concentrated.
  EXPECT_GT(conc.cellular_gini, conc.fixed_gini);
}

TEST(ResolverSharingReportTest, FractionsInUnitInterval) {
  const Experiment& e = TinyExp();
  const dns::DnsSimulator dns_sim(e.world);
  const auto cdf = ResolverSharingReport(e, dns_sim);
  ASSERT_FALSE(cdf.empty());
  for (const auto& [x, f] : cdf.points()) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
  // Shared resolvers exist: some mass strictly between 0 and 1.
  EXPECT_GT(cdf.At(0.99) - cdf.At(0.01), 0.15);
}

TEST(PublicDnsReportTest, SelectionResolves) {
  const Experiment& e = TinyExp();
  const dns::DnsSimulator dns_sim(e.world);
  const auto rows = PublicDnsReport(e, dns_sim);
  // Tiny world contains US, BR, IN, DZ from the selection list.
  ASSERT_GE(rows.size(), 4u);
  for (const auto& row : rows) {
    double total = 0.0;
    for (double s : row.share) total += s;
    EXPECT_GE(total, 0.0);
    EXPECT_LE(total, 1.0);
    if (row.label == "DZ1") {
      EXPECT_GT(total, 0.7);  // Fig 10 extreme
    }
    if (row.label == "US1") {
      EXPECT_LT(total, 0.05);  // U.S. negligible
    }
  }
}

TEST(FindCarrierTest, LabelsResolve) {
  const Experiment& e = TinyExp();
  int found = 0;
  for (char label : {'A', 'B', 'C'}) {
    if (FindCarrier(e, label) != nullptr) ++found;
  }
  EXPECT_GE(found, 2);
  EXPECT_EQ(FindCarrier(e, 'Z'), nullptr);
}

}  // namespace
}  // namespace cellspot::analysis
