#include "cellspot/stream/event.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace cellspot::stream {
namespace {

StreamEvent BeaconEvent() {
  StreamEvent e;
  e.kind = EventKind::kBeacon;
  e.subnet = 1234;
  e.seq = 7;
  e.stats.hits = 100;
  e.stats.netinfo_hits = 40;
  e.stats.cellular_labels = 25;
  e.stats.wifi_labels = 10;
  e.stats.ethernet_labels = 3;
  e.stats.other_labels = 2;
  e.stats.mobile_browser_hits = 60;
  return e;
}

StreamEvent DemandEvent() {
  StreamEvent e;
  e.kind = EventKind::kDemand;
  e.subnet = 9;
  e.seq = 3;
  e.demand_raw = 1234.5625;
  return e;
}

TEST(StreamEvent, BeaconRoundTrips) {
  const StreamEvent e = BeaconEvent();
  const auto decoded = DecodeEventFrame(EncodeEventFrame(e));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, e);
}

TEST(StreamEvent, DemandRoundTrips) {
  const StreamEvent e = DemandEvent();
  const auto decoded = DecodeEventFrame(EncodeEventFrame(e));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, e);
  EXPECT_EQ(decoded->demand_raw, e.demand_raw);  // exact, not approximate
}

TEST(StreamEvent, EverySingleByteFlipIsRejected) {
  const std::string frame = EncodeEventFrame(BeaconEvent());
  for (std::size_t pos = 0; pos < frame.size(); ++pos) {
    for (std::uint8_t bit = 0; bit < 8; ++bit) {
      std::string bad = frame;
      bad[pos] = static_cast<char>(static_cast<std::uint8_t>(bad[pos]) ^ (1u << bit));
      EXPECT_FALSE(DecodeEventFrame(bad).has_value())
          << "flip at byte " << pos << " bit " << int(bit) << " survived";
    }
  }
}

TEST(StreamEvent, RejectsShortAndEmptyFrames) {
  EXPECT_FALSE(DecodeEventFrame("").has_value());
  EXPECT_FALSE(DecodeEventFrame("a").has_value());
  EXPECT_FALSE(DecodeEventFrame("abcd").has_value());  // CRC alone, no body
  const std::string frame = EncodeEventFrame(DemandEvent());
  for (std::size_t n = 0; n < frame.size(); ++n) {
    EXPECT_FALSE(DecodeEventFrame(frame.substr(0, n)).has_value())
        << "truncation to " << n << " bytes survived";
  }
}

TEST(StreamEvent, RejectsTrailingBytes) {
  // Valid CRC over an extended body still fails: the payload must be
  // fully consumed.
  std::string frame = EncodeEventFrame(BeaconEvent());
  frame.insert(frame.size() - 4, "\0", 1);
  EXPECT_FALSE(DecodeEventFrame(frame).has_value());
}

TEST(StreamEvent, RejectsInconsistentBeaconStats) {
  // CRC-valid frames with impossible aggregates are rejected by field
  // validation (defence in depth behind the checksum).
  StreamEvent e = BeaconEvent();
  e.stats.netinfo_hits = e.stats.hits + 1;  // netinfo > hits
  EXPECT_FALSE(DecodeEventFrame(EncodeEventFrame(e)).has_value());

  e = BeaconEvent();
  e.stats.cellular_labels = e.stats.netinfo_hits + 1;  // labels > netinfo
  e.stats.wifi_labels = e.stats.ethernet_labels = e.stats.other_labels = 0;
  EXPECT_FALSE(DecodeEventFrame(EncodeEventFrame(e)).has_value());

  e = BeaconEvent();
  e.stats.mobile_browser_hits = e.stats.hits + 1;  // mobile > hits
  EXPECT_FALSE(DecodeEventFrame(EncodeEventFrame(e)).has_value());
}

TEST(StreamEvent, AcceptsLabelSumBelowNetinfo) {
  // Intermediate cumulative rounds floor each field independently, so
  // labels may lag netinfo hits; that must decode fine.
  StreamEvent e = BeaconEvent();
  e.stats.cellular_labels = 1;
  e.stats.wifi_labels = e.stats.ethernet_labels = e.stats.other_labels = 0;
  EXPECT_TRUE(DecodeEventFrame(EncodeEventFrame(e)).has_value());
}

TEST(StreamEvent, RejectsBadDemandValues) {
  StreamEvent e = DemandEvent();
  e.demand_raw = -1.0;
  EXPECT_FALSE(DecodeEventFrame(EncodeEventFrame(e)).has_value());
  e.demand_raw = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(DecodeEventFrame(EncodeEventFrame(e)).has_value());
  e.demand_raw = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(DecodeEventFrame(EncodeEventFrame(e)).has_value());
  e.demand_raw = 0.0;
  EXPECT_TRUE(DecodeEventFrame(EncodeEventFrame(e)).has_value());
}

TEST(StreamEvent, RejectsUnknownKind) {
  std::string frame = EncodeEventFrame(DemandEvent());
  // Rewrite the kind byte and fix up the CRC so only the kind is wrong.
  StreamEvent e = DemandEvent();
  std::string valid = EncodeEventFrame(e);
  valid[0] = 3;  // not a kind
  // Recompute CRC over the altered body.
  const std::string body = valid.substr(0, valid.size() - 4);
  // Borrow the snapshot CRC via a fresh encode comparison: simplest is
  // to check the decoder rejects it even with a fixed-up CRC.
  // (DecodeEventFrame checks CRC first, then kind.)
  // Build by hand:
  std::uint32_t crc = 0;
  {
    // CRC-32 IEEE, reflected 0xEDB88320 — tiny local impl to avoid
    // reaching into snapshot internals from this test.
    crc = 0xFFFFFFFFu;
    for (unsigned char ch : body) {
      crc ^= ch;
      for (int k = 0; k < 8; ++k) crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    }
    crc ^= 0xFFFFFFFFu;
  }
  std::string patched = body;
  for (int i = 0; i < 4; ++i) patched.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  EXPECT_FALSE(DecodeEventFrame(patched).has_value());
}

}  // namespace
}  // namespace cellspot::stream
