// Full-pipeline persistence contract (what the CLI relies on): export a
// world's datasets to CSV, reload everything from disk, re-run the
// pipeline on the loaded artifacts, and obtain the same result as the
// in-memory run.
#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include "cellspot/analysis/experiment.hpp"
#include "cellspot/asdb/serialization.hpp"
#include "cellspot/cdn/beacon_log.hpp"
#include "cellspot/util/csv.hpp"
#include "cellspot/util/rng.hpp"

namespace cellspot {
namespace {

TEST(PipelineRoundTrip, CsvPathMatchesInMemoryPath) {
  const analysis::Experiment mem = analysis::RunExperiment(simnet::WorldConfig::Tiny());
  const std::string dir = ::testing::TempDir();

  // Export the four artifacts the consumer pipeline needs.
  {
    std::ofstream out(dir + "/beacon.csv");
    mem.beacons.SaveCsv(out);
  }
  {
    std::ofstream out(dir + "/demand.csv");
    mem.demand.SaveCsv(out);
  }
  {
    std::ofstream out(dir + "/asdb.csv");
    asdb::SaveAsDatabaseCsv(mem.world.as_db(), out);
  }
  {
    std::ofstream out(dir + "/rib.csv");
    asdb::SaveRoutingTableCsv(mem.world.rib(), mem.world.as_db(), out);
  }

  // Reload and re-run, simulator-free.
  std::ifstream beacon_in(dir + "/beacon.csv");
  const auto beacons = dataset::BeaconDataset::LoadCsv(beacon_in);
  std::ifstream demand_in(dir + "/demand.csv");
  const auto demand = dataset::DemandDataset::LoadCsv(demand_in);
  std::ifstream asdb_in(dir + "/asdb.csv");
  const auto as_db = asdb::LoadAsDatabaseCsv(asdb_in);
  std::ifstream rib_in(dir + "/rib.csv");
  const auto rib = asdb::LoadRoutingTableCsv(rib_in);

  const auto classified = core::SubnetClassifier().Classify(beacons);
  const auto candidates = core::AggregateCandidateAses(rib, classified, beacons, demand);
  const auto filtered = core::ApplyAsFilters(candidates, as_db);

  // Same classification...
  EXPECT_EQ(classified.cellular().size(), mem.classified.cellular().size());
  for (const netaddr::Prefix& block : mem.classified.cellular()) {
    EXPECT_TRUE(classified.IsCellular(block)) << block.ToString();
  }
  // ...same candidate set and same kept set.
  EXPECT_EQ(candidates.size(), mem.candidates.size());
  std::set<asdb::AsNumber> kept_mem;
  for (const auto& as : mem.filtered.kept) kept_mem.insert(as.asn);
  std::set<asdb::AsNumber> kept_csv;
  for (const auto& as : filtered.kept) kept_csv.insert(as.asn);
  EXPECT_EQ(kept_csv, kept_mem);
  // Demand-derived quantities survive the round trip within float noise.
  for (std::size_t i = 0; i < filtered.kept.size(); ++i) {
    EXPECT_NEAR(filtered.kept[i].cell_demand_du, mem.filtered.kept[i].cell_demand_du,
                1e-3)
        << filtered.kept[i].asn;
  }
}

TEST(ParserRobustness, GarbageNeverCrashes) {
  // Feed structured garbage to every external-input parser: they must
  // either parse or throw a typed error, never crash or accept nonsense.
  util::Rng rng(20260705);
  const char charset[] = "0123456789abcdef.:/-,x \"";
  for (int i = 0; i < 3000; ++i) {
    std::string junk;
    const auto len = rng.UniformInt(0, 40);
    for (std::uint64_t c = 0; c < len; ++c) {
      junk.push_back(charset[rng.UniformInt(0, sizeof(charset) - 2)]);
    }
    // Non-throwing parsers must simply return empty.
    (void)netaddr::IpAddress::TryParse(junk);
    (void)netaddr::Prefix::TryParse(junk);
    // Throwing parsers must throw std::exception-derived types only.
    try {
      (void)cdn::ParseBeaconLogLine(junk);
    } catch (const std::exception&) {
    }
    try {
      (void)util::ParseCsvLine(junk);
    } catch (const std::exception&) {
    }
  }
}

}  // namespace
}  // namespace cellspot
