#include "cellspot/netaddr/prefix_trie.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace cellspot::netaddr {
namespace {

TEST(PrefixTrie, EmptyLookups) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.LongestMatch(IpAddress::Parse("10.0.0.1")), nullptr);
  EXPECT_EQ(trie.Exact(Prefix::Parse("10.0.0.0/24")), nullptr);
}

TEST(PrefixTrie, InsertAndExact) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.Insert(Prefix::Parse("10.0.0.0/24"), 7));
  ASSERT_NE(trie.Exact(Prefix::Parse("10.0.0.0/24")), nullptr);
  EXPECT_EQ(*trie.Exact(Prefix::Parse("10.0.0.0/24")), 7);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixTrie, OverwriteReturnsFalse) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.Insert(Prefix::Parse("10.0.0.0/24"), 1));
  EXPECT_FALSE(trie.Insert(Prefix::Parse("10.0.0.0/24"), 2));
  EXPECT_EQ(*trie.Exact(Prefix::Parse("10.0.0.0/24")), 2);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixTrie, LongestMatchPrefersSpecific) {
  PrefixTrie<std::string> trie;
  trie.Insert(Prefix::Parse("10.0.0.0/8"), "coarse");
  trie.Insert(Prefix::Parse("10.1.0.0/16"), "mid");
  trie.Insert(Prefix::Parse("10.1.2.0/24"), "fine");
  EXPECT_EQ(*trie.LongestMatch(IpAddress::Parse("10.1.2.3")), "fine");
  EXPECT_EQ(*trie.LongestMatch(IpAddress::Parse("10.1.9.9")), "mid");
  EXPECT_EQ(*trie.LongestMatch(IpAddress::Parse("10.9.9.9")), "coarse");
  EXPECT_EQ(trie.LongestMatch(IpAddress::Parse("11.0.0.1")), nullptr);
}

TEST(PrefixTrie, LongestMatchWithLength) {
  PrefixTrie<int> trie;
  trie.Insert(Prefix::Parse("10.0.0.0/8"), 8);
  trie.Insert(Prefix::Parse("10.1.0.0/16"), 16);
  const auto m = trie.LongestMatchWithLength(IpAddress::Parse("10.1.5.5"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->first, 16);
  EXPECT_EQ(*m->second, 16);
  EXPECT_FALSE(trie.LongestMatchWithLength(IpAddress::Parse("12.0.0.1")).has_value());
}

TEST(PrefixTrie, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.Insert(Prefix(IpAddress::V4(0), 0), 42);
  EXPECT_EQ(*trie.LongestMatch(IpAddress::Parse("8.8.8.8")), 42);
  // v6 root is separate; the v4 default must not leak.
  EXPECT_EQ(trie.LongestMatch(IpAddress::Parse("2001:db8::1")), nullptr);
}

TEST(PrefixTrie, FamiliesAreIsolated) {
  PrefixTrie<int> trie;
  trie.Insert(Prefix::Parse("2001:db8::/48"), 6);
  trie.Insert(Prefix::Parse("32.1.13.0/24"), 4);  // 0x2001:0db8 as v4 bytes
  EXPECT_EQ(*trie.LongestMatch(IpAddress::Parse("2001:db8::99")), 6);
  EXPECT_EQ(*trie.LongestMatch(IpAddress::Parse("32.1.13.7")), 4);
}

TEST(PrefixTrie, ForEachVisitsAll) {
  PrefixTrie<int> trie;
  trie.Insert(Prefix::Parse("10.0.0.0/24"), 1);
  trie.Insert(Prefix::Parse("10.0.1.0/24"), 2);
  trie.Insert(Prefix::Parse("2001:db8::/48"), 3);
  std::map<std::string, int> seen;
  trie.ForEach([&](const Prefix& p, const int& v) { seen[p.ToString()] = v; });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen["10.0.0.0/24"], 1);
  EXPECT_EQ(seen["10.0.1.0/24"], 2);
  EXPECT_EQ(seen["2001:db8::/48"], 3);
}

TEST(PrefixTrie, ManyPrefixesStressLookups) {
  PrefixTrie<std::uint32_t> trie;
  // 1024 /24s under 10.0.0.0/14.
  const auto parent = Prefix::Parse("10.0.0.0/14");
  for (std::uint64_t i = 0; i < BlockCount(parent); ++i) {
    trie.Insert(NthBlock(parent, i), static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(trie.size(), 1024u);
  for (std::uint64_t i = 0; i < 1024; i += 37) {
    const auto block = NthBlock(parent, i);
    const auto addr = NthAddress(block, 200);
    ASSERT_NE(trie.LongestMatch(addr), nullptr);
    EXPECT_EQ(*trie.LongestMatch(addr), i);
  }
}

struct MoveOnly {
  explicit MoveOnly(int v) : value(v) {}
  MoveOnly(MoveOnly&&) = default;
  MoveOnly& operator=(MoveOnly&&) = default;
  int value;
};

TEST(PrefixTrie, SupportsMoveOnlyValues) {
  PrefixTrie<MoveOnly> trie;
  trie.Insert(Prefix::Parse("10.0.0.0/24"), MoveOnly(9));
  EXPECT_EQ(trie.LongestMatch(IpAddress::Parse("10.0.0.5"))->value, 9);
}

}  // namespace
}  // namespace cellspot::netaddr
