#include "cellspot/simnet/world_config.hpp"

#include <gtest/gtest.h>

#include <set>

#include "cellspot/util/error.hpp"

namespace cellspot::simnet {
namespace {

TEST(WorldConfigPaper, ValidatesAndCoversWorld) {
  const WorldConfig cfg = WorldConfig::Paper();
  EXPECT_GT(cfg.countries.size(), 100u);
  EXPECT_NO_THROW(cfg.Validate());
}

TEST(WorldConfigPaper, GlobalCellularShareNearPaper) {
  const WorldConfig cfg = WorldConfig::Paper();
  const double share = cfg.TotalCellularDemand() / cfg.TotalCountryDemand();
  // Configured truth share is 0.19: the pipeline observes ~85% of cellular
  // demand (no-JS gateways, dormant space), landing the *measured* share
  // at the paper's 16.2%.
  EXPECT_NEAR(share, 0.175, 0.012);
}

TEST(WorldConfigPaper, UsDominatesCellularDemand) {
  const WorldConfig cfg = WorldConfig::Paper();
  double us_cell = 0.0;
  for (const CountryProfile& p : cfg.countries) {
    if (p.iso2 == "US") us_cell = p.cell_demand_du;
  }
  // Fig 11: the U.S. accounts for ~30% of global cellular demand.
  EXPECT_NEAR(us_cell / cfg.TotalCellularDemand(), 0.30, 0.04);
}

TEST(WorldConfigPaper, PinnedCountryFractionsSurviveCalibration) {
  const WorldConfig cfg = WorldConfig::Paper();
  auto fraction_of = [&](const std::string& iso) {
    for (const CountryProfile& p : cfg.countries) {
      if (p.iso2 == iso) return p.cell_demand_du / (p.cell_demand_du + p.fixed_demand_du);
    }
    ADD_FAILURE() << "missing country " << iso;
    return 0.0;
  };
  EXPECT_NEAR(fraction_of("GH"), 0.959, 1e-6);  // Ghana, paper abstract
  EXPECT_NEAR(fraction_of("FR"), 0.121, 1e-6);  // France, paper abstract
  EXPECT_NEAR(fraction_of("ID"), 0.63, 1e-6);   // Indonesia (§7.2)
  EXPECT_NEAR(fraction_of("LA"), 0.871, 1e-6);  // Laos (§7.2)
  EXPECT_NEAR(fraction_of("US"), 0.166, 1e-6);  // U.S. (§7.2)
}

TEST(WorldConfigPaper, CellularAsTotalsNearTable6) {
  const WorldConfig cfg = WorldConfig::Paper();
  std::array<int, geo::kContinentCount> totals{};
  for (const CountryProfile& p : cfg.countries) {
    totals[static_cast<std::size_t>(p.continent)] += p.cellular_as_count;
  }
  // Table 6: AF 114, AS 213, EU 185, NA 93, OC 16, SA 48. Configured
  // counts should land within ~25% (detection/filtering trims them too).
  EXPECT_NEAR(totals[0], 114, 30);  // AF
  EXPECT_NEAR(totals[1], 213, 55);  // AS
  EXPECT_NEAR(totals[2], 185, 48);  // EU
  EXPECT_NEAR(totals[3], 93, 25);   // NA
  EXPECT_NEAR(totals[4], 16, 8);    // OC
  EXPECT_NEAR(totals[5], 48, 15);   // SA
}

TEST(WorldConfigPaper, Ipv6DeploymentSparse) {
  const WorldConfig cfg = WorldConfig::Paper();
  int v6_as = 0;
  std::set<std::string> v6_countries;
  for (const CountryProfile& p : cfg.countries) {
    if (p.v6_cellular_as_count > 0) {
      v6_as += p.v6_cellular_as_count;
      v6_countries.insert(p.iso2);
    }
  }
  // Paper: 52 cellular ASes with IPv6 across 24 countries.
  EXPECT_NEAR(v6_as, 52, 10);
  EXPECT_NEAR(static_cast<double>(v6_countries.size()), 24.0, 6.0);
}

TEST(WorldConfigPaper, ChinaExcludedFromAnalysis) {
  const WorldConfig cfg = WorldConfig::Paper();
  bool found = false;
  for (const CountryProfile& p : cfg.countries) {
    if (p.iso2 == "CN") {
      found = true;
      EXPECT_TRUE(p.exclude_from_analysis);
    } else {
      EXPECT_FALSE(p.exclude_from_analysis) << p.iso2;
    }
  }
  EXPECT_TRUE(found);
}

TEST(WorldConfigPaper, BeaconRateScalesWithWorldScale) {
  EXPECT_DOUBLE_EQ(WorldConfig::Paper(0.05).beacon_hits_per_du, 1500.0);
  EXPECT_DOUBLE_EQ(WorldConfig::Paper(0.1).beacon_hits_per_du, 3000.0);
}

TEST(WorldConfigTiny, SmallAndValid) {
  const WorldConfig cfg = WorldConfig::Tiny();
  EXPECT_EQ(cfg.countries.size(), 6u);
  EXPECT_NO_THROW(cfg.Validate());
}

TEST(WorldConfigValidate, CatchesBadConfigs) {
  WorldConfig cfg = WorldConfig::Tiny();
  cfg.scale = 0.0;
  EXPECT_THROW(cfg.Validate(), ConfigError);

  cfg = WorldConfig::Tiny();
  cfg.countries.clear();
  EXPECT_THROW(cfg.Validate(), ConfigError);

  cfg = WorldConfig::Tiny();
  cfg.countries.push_back(cfg.countries.front());  // duplicate ISO
  EXPECT_THROW(cfg.Validate(), ConfigError);

  cfg = WorldConfig::Tiny();
  cfg.countries.front().mixed_share = 1.5;
  EXPECT_THROW(cfg.Validate(), ConfigError);

  cfg = WorldConfig::Tiny();
  cfg.countries.front().cell_demand_du = -1.0;
  EXPECT_THROW(cfg.Validate(), ConfigError);

  cfg = WorldConfig::Tiny();
  cfg.continent_blocks[0].cell_v4 = 100.0;
  cfg.continent_blocks[0].active_v4 = 50.0;  // cell > active
  EXPECT_THROW(cfg.Validate(), ConfigError);
}

}  // namespace
}  // namespace cellspot::simnet
