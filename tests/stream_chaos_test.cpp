// Chaos harness: no injected delivery fault — corruption, duplication,
// drops, reordering, a corrupted checkpoint, a mid-run kill — is ever
// fatal to the streaming daemon, and whenever the final cumulative
// round survives, the daemon still converges to the batch result.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cellspot/analysis/pipeline.hpp"
#include "cellspot/cdn/event_stream.hpp"
#include "cellspot/exec/executor.hpp"
#include "cellspot/faultsim/frame_chaos.hpp"
#include "cellspot/simnet/world.hpp"
#include "cellspot/snapshot/serde.hpp"
#include "cellspot/snapshot/snapshot.hpp"
#include "cellspot/stream/daemon.hpp"

namespace cellspot {
namespace {

namespace fs = std::filesystem;

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

const simnet::World& TinyWorld() {
  static const simnet::World world =
      simnet::World::Generate(simnet::WorldConfig::Tiny());
  return world;
}

const std::vector<std::string>& TinyFrames() {
  static const std::vector<std::string> frames =
      cdn::EventStreamGenerator(TinyWorld(), {.rounds = 4}).GenerateFrames();
  return frames;
}

std::size_t TinyFinalBegin() {
  return cdn::EventStreamGenerator(TinyWorld(), {.rounds = 4})
      .FinalRoundBegin(TinyFrames().size());
}

std::string ClassifiedBytes(const stream::StreamDaemon& daemon) {
  return snapshot::EncodeSnapshot(snapshot::EncodeClassified(daemon.ExportClassified()));
}

std::string BatchClassifiedBytes() {
  static const std::string bytes = [] {
    exec::Executor ex(2);
    analysis::Pipeline pipeline(
        {.world = simnet::WorldConfig::Tiny(), .classifier = {}, .filters = {},
         .snapshot_dir = {}},
        ex);
    pipeline.Classify();
    return snapshot::EncodeSnapshot(
        snapshot::EncodeClassified(pipeline.experiment().classified));
  }();
  return bytes;
}

/// Feed frames through the daemon with manual ticks (drain before each
/// push so nothing sheds inside the harness itself).
void Feed(stream::StreamDaemon& daemon, const std::vector<std::string>& frames) {
  for (const std::string& frame : frames) {
    while (daemon.queue().size() >= daemon.queue().capacity()) daemon.Tick();
    daemon.queue().Push(frame);
  }
  while (daemon.queue().size() > 0) daemon.Tick();
  daemon.Tick();
}

TEST(FrameChaos, SameSeedSameFaults) {
  const faultsim::ChaosMix mix{.corrupt = 0.1, .duplicate = 0.1, .drop = 0.1,
                               .reorder_window = 8};
  faultsim::FrameChaos a(mix, 42), b(mix, 42), c(mix, 43);
  const std::vector<std::string> delivered_a = a.Run(TinyFrames());
  EXPECT_EQ(delivered_a, b.Run(TinyFrames()));
  EXPECT_EQ(a.stats().corrupted, b.stats().corrupted);
  EXPECT_EQ(a.stats().dropped, b.stats().dropped);
  EXPECT_NE(delivered_a, c.Run(TinyFrames()));  // different seed diverges
}

TEST(FrameChaos, AccountsForEveryFrame) {
  const faultsim::ChaosMix mix{.corrupt = 0.2, .duplicate = 0.2, .drop = 0.2};
  faultsim::FrameChaos chaos(mix, 7);
  const std::vector<std::string> delivered = chaos.Run(TinyFrames());
  const faultsim::ChaosStats& s = chaos.stats();
  EXPECT_EQ(s.frames_in, TinyFrames().size());
  EXPECT_EQ(s.frames_out, delivered.size());
  EXPECT_EQ(s.frames_out, s.frames_in - s.dropped + s.duplicated);
  EXPECT_GT(s.corrupted, 0u);
  EXPECT_GT(s.dropped, 0u);
}

TEST(FrameChaos, ProtectedSuffixPassesThroughVerbatim) {
  const faultsim::ChaosMix mix{.corrupt = 0.5, .drop = 0.5};
  faultsim::FrameChaos chaos(mix, 11);
  const std::size_t protect_from = TinyFinalBegin();
  const std::vector<std::string> delivered = chaos.Run(TinyFrames(), protect_from);
  const std::size_t protected_count = TinyFrames().size() - protect_from;
  ASSERT_GE(delivered.size(), protected_count);
  for (std::size_t i = 0; i < protected_count; ++i) {
    EXPECT_EQ(delivered[delivered.size() - protected_count + i],
              TinyFrames()[protect_from + i]);
  }
}

TEST(FrameChaos, HandlesDegenerateFrames) {
  const faultsim::ChaosMix mix{.corrupt = 1.0};
  faultsim::FrameChaos chaos(mix, 3);
  EXPECT_TRUE(chaos.Run({}).empty());
  // Zero-length and single-byte frames must not crash the corruptor.
  const std::vector<std::string> tiny = {"", "x", std::string(1, '\0')};
  const std::vector<std::string> out = faultsim::FrameChaos(mix, 3).Run(tiny);
  EXPECT_EQ(out.size(), tiny.size());
}

TEST(FrameChaos, RejectsOverfullMix) {
  EXPECT_THROW(faultsim::FrameChaos({.corrupt = 0.6, .drop = 0.6}, 1),
               std::invalid_argument);
}

TEST(StreamChaos, ChaosBeforeFinalRoundStillConverges) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    faultsim::FrameChaos chaos(
        {.corrupt = 0.1, .duplicate = 0.1, .drop = 0.1, .reorder_window = 8}, seed);
    const std::vector<std::string> delivered =
        chaos.Run(TinyFrames(), TinyFinalBegin());

    stream::DaemonConfig config;
    config.queue_capacity = 256;
    config.backpressure = stream::BackpressurePolicy::kBlock;
    config.max_events_per_tick = 64;
    stream::StreamDaemon daemon(TinyWorld(), {}, config);
    Feed(daemon, delivered);

    EXPECT_EQ(ClassifiedBytes(daemon), BatchClassifiedBytes()) << "seed " << seed;
    // Not exact: two XOR flips can land on the same byte and cancel, so
    // a "corrupted" frame occasionally survives intact (the CRC then
    // rightly accepts it).
    EXPECT_GT(daemon.stats().corrupt, 0u) << "seed " << seed;
    EXPECT_LE(daemon.stats().corrupt, chaos.stats().corrupted) << "seed " << seed;
  }
}

TEST(StreamChaos, ChaosEverywhereIsNeverFatal) {
  // No protected suffix: convergence is off the table, survival is not.
  faultsim::FrameChaos chaos(
      {.corrupt = 0.3, .duplicate = 0.3, .drop = 0.3, .reorder_window = 16}, 99);
  const std::vector<std::string> delivered = chaos.Run(TinyFrames());

  stream::StreamDaemon daemon(TinyWorld(), {}, {.queue_capacity = 128});
  Feed(daemon, delivered);
  const stream::DaemonStats& s = daemon.stats();
  EXPECT_EQ(s.applied + s.corrupt + s.duplicate + s.stale_seq + s.bad_subnet,
            delivered.size());
  EXPECT_GT(s.applied, 0u);
  // Exports still work on partial state; they just differ from batch.
  (void)daemon.ExportBeacons();
  (void)daemon.ExportClassified();
}

TEST(StreamChaos, AllFramesCorruptedAppliesNothing) {
  // Flip one CRC bit in every frame: each is guaranteed invalid (chaos
  // byte flips can cancel each other; this cannot).
  std::vector<std::string> bad = TinyFrames();
  for (std::string& frame : bad) {
    frame.back() = static_cast<char>(static_cast<std::uint8_t>(frame.back()) ^ 0x01);
  }

  stream::StreamDaemon daemon(TinyWorld(), {}, {.queue_capacity = 64});
  Feed(daemon, bad);
  EXPECT_EQ(daemon.stats().applied, 0u);
  EXPECT_EQ(daemon.stats().corrupt, bad.size());
  EXPECT_EQ(daemon.ExportBeacons().block_count(), 0u);
  EXPECT_EQ(daemon.count_in(stream::SubnetLiveness::kNeverSeen),
            TinyWorld().subnets().size());
}

TEST(StreamChaos, KillRecoverUnderChaosConverges) {
  const std::vector<std::string>& frames = TinyFrames();
  const std::size_t final_begin = TinyFinalBegin();
  faultsim::FrameChaos chaos(
      {.corrupt = 0.15, .duplicate = 0.15, .drop = 0.15, .reorder_window = 8}, 1234);
  const std::vector<std::string> delivered = chaos.Run(frames, final_begin);
  const std::size_t kill_at = delivered.size() / 2;

  const std::uint64_t hash =
      stream::StreamDaemon::ConfigHash(simnet::WorldConfig::Tiny(), {});
  stream::CheckpointStore store(FreshDir("stream_chaos_ckpt"), hash);
  stream::DaemonConfig config;
  config.queue_capacity = 256;
  config.max_events_per_tick = 64;
  config.backpressure = stream::BackpressurePolicy::kBlock;
  {
    stream::StreamDaemon daemon(TinyWorld(), {}, config, &store);
    Feed(daemon, {delivered.begin(), delivered.begin() + static_cast<std::ptrdiff_t>(
                                                             kill_at)});
    ASSERT_TRUE(daemon.Checkpoint());
  }

  stream::StreamDaemon recovered(TinyWorld(), {}, config, &store);
  ASSERT_TRUE(recovered.TryRestore());
  Feed(recovered, {delivered.begin() + static_cast<std::ptrdiff_t>(kill_at),
                   delivered.end()});
  EXPECT_EQ(ClassifiedBytes(recovered), BatchClassifiedBytes());
}

TEST(StreamChaos, CorruptedCheckpointUnderChaosFallsBackNotFatal) {
  const std::uint64_t hash =
      stream::StreamDaemon::ConfigHash(simnet::WorldConfig::Tiny(), {});
  stream::CheckpointStore store(FreshDir("stream_chaos_bad_ckpt"), hash);
  stream::DaemonConfig config;
  config.queue_capacity = 256;
  config.max_events_per_tick = 64;
  config.backpressure = stream::BackpressurePolicy::kBlock;

  std::uint64_t first_tick = 0;
  {
    stream::StreamDaemon daemon(TinyWorld(), {}, config, &store);
    Feed(daemon, {TinyFrames().begin(),
                  TinyFrames().begin() +
                      static_cast<std::ptrdiff_t>(TinyFrames().size() / 2)});
    ASSERT_TRUE(daemon.Checkpoint());
    first_tick = daemon.tick();
    Feed(daemon, {TinyFrames().begin() +
                      static_cast<std::ptrdiff_t>(TinyFrames().size() / 2),
                  TinyFrames().end()});
    ASSERT_TRUE(daemon.Checkpoint());

    // Chaos eats the newest checkpoint on disk.
    std::fstream f(store.PathForTick(daemon.tick()),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    char byte = 0;
    f.seekg(20);
    f.get(byte);
    f.seekp(20);
    f.put(static_cast<char>(byte ^ 0x5A));
  }

  stream::StreamDaemon recovered(TinyWorld(), {}, config, &store);
  ASSERT_TRUE(recovered.TryRestore());  // previous generation saves the day
  EXPECT_EQ(recovered.tick(), first_tick);
  // Replaying the second half from the older checkpoint reconverges.
  Feed(recovered, {TinyFrames().begin() +
                       static_cast<std::ptrdiff_t>(TinyFrames().size() / 2),
                   TinyFrames().end()});
  EXPECT_EQ(ClassifiedBytes(recovered), BatchClassifiedBytes());
}

}  // namespace
}  // namespace cellspot
