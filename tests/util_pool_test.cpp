// FixedPool: slab carving, freelist recycling, growth-instead-of-failure
// and the usage statistics the aggregate.pool.* gauges are built on.
#include "cellspot/util/pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

namespace cellspot::util {
namespace {

struct Node {
  std::uint64_t value = 0;
  Node* next = nullptr;
};

TEST(FixedPool, AllocValueInitializesEveryObject) {
  FixedPool<Node> pool(4);
  Node* a = pool.Alloc();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->value, 0u);
  EXPECT_EQ(a->next, nullptr);

  // Dirty the storage, recycle it, and the next Alloc must hand back a
  // freshly value-initialised object — recycled chunks carry no history.
  a->value = 0xdeadbeef;
  a->next = a;
  pool.Free(a);
  Node* b = pool.Alloc();
  EXPECT_EQ(b, a) << "freelist should hand back the recycled slot first";
  EXPECT_EQ(b->value, 0u);
  EXPECT_EQ(b->next, nullptr);
}

TEST(FixedPool, GrowsBySlabInsteadOfFailing) {
  FixedPool<Node> pool(2);
  std::set<Node*> distinct;
  for (int i = 0; i < 7; ++i) distinct.insert(pool.Alloc());
  EXPECT_EQ(distinct.size(), 7u);
  EXPECT_EQ(pool.in_use(), 7u);
  EXPECT_EQ(pool.slab_count(), 4u);  // ceil(7 / 2)
  EXPECT_EQ(pool.capacity(), 8u);
  EXPECT_EQ(pool.slab_capacity(), 2u);
}

TEST(FixedPool, HighWaterMarkSurvivesFrees) {
  FixedPool<Node> pool(8);
  std::vector<Node*> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(pool.Alloc());
  EXPECT_EQ(pool.high_water_mark(), 5u);
  for (Node* n : nodes) pool.Free(n);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.high_water_mark(), 5u);

  // Recycled allocations below the old peak must not move it.
  (void)pool.Alloc();
  EXPECT_EQ(pool.high_water_mark(), 5u);
  EXPECT_EQ(pool.slab_count(), 1u) << "recycling must not grow the pool";
}

TEST(FixedPool, FreelistDrainsBeforeBumpAllocation) {
  FixedPool<Node> pool(4);
  Node* a = pool.Alloc();
  Node* b = pool.Alloc();
  pool.Free(a);
  pool.Free(b);
  // LIFO freelist: last freed comes back first, and no new slot is
  // carved while recycled storage remains.
  EXPECT_EQ(pool.Alloc(), b);
  EXPECT_EQ(pool.Alloc(), a);
  EXPECT_EQ(pool.capacity(), 4u);
}

TEST(FixedPool, ZeroSlabCapacityClampsToOne) {
  FixedPool<Node> pool(0);
  EXPECT_EQ(pool.slab_capacity(), 1u);
  (void)pool.Alloc();
  (void)pool.Alloc();
  EXPECT_EQ(pool.slab_count(), 2u);
}

TEST(FixedPool, FreeNullIsANoOp) {
  FixedPool<Node> pool;
  pool.Free(nullptr);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(FixedPool, MoveTransfersOwnership) {
  FixedPool<Node> pool(2);
  Node* a = pool.Alloc();
  a->value = 42;
  FixedPool<Node> moved = std::move(pool);
  EXPECT_EQ(moved.in_use(), 1u);
  EXPECT_EQ(a->value, 42u);  // storage owned by the moved-to pool now
  moved.Free(a);
  EXPECT_EQ(moved.in_use(), 0u);
}

}  // namespace
}  // namespace cellspot::util
