// World-generation invariants across seeds and scales.
#include <gtest/gtest.h>

#include <unordered_set>

#include "cellspot/simnet/world.hpp"

namespace cellspot::simnet {
namespace {

class WorldSeedProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static World Make(std::uint64_t seed) {
    WorldConfig config = WorldConfig::Tiny();
    config.seed = seed;
    return World::Generate(config);
  }
};

TEST_P(WorldSeedProperty, StructuralInvariantsHoldForAnySeed) {
  const World w = Make(GetParam());

  // Blocks unique and indexed; operator ranges partition the subnets.
  std::unordered_set<netaddr::Prefix> seen;
  for (const Subnet& s : w.subnets()) {
    EXPECT_TRUE(seen.insert(s.block).second);
  }
  std::size_t covered = 0;
  for (const OperatorInfo& op : w.operators()) {
    EXPECT_LE(op.subnet_begin, op.subnet_end);
    covered += op.subnet_end - op.subnet_begin;
    EXPECT_NE(w.as_db().Find(op.asn), nullptr);
  }
  EXPECT_EQ(covered, w.subnets().size());

  // Demand conservation within tolerance.
  double cell = 0.0;
  for (const Subnet& s : w.subnets()) {
    EXPECT_GE(s.demand_du, 0.0);
    EXPECT_GE(s.beacon_scale, 0.0);
    if (s.truth_cellular) cell += s.demand_du;
  }
  EXPECT_NEAR(cell / w.config().TotalCellularDemand(), 1.0, 0.06);
}

TEST_P(WorldSeedProperty, AsnsAreUniqueAndNonZero) {
  const World w = Make(GetParam());
  std::unordered_set<asdb::AsNumber> asns;
  for (const OperatorInfo& op : w.operators()) {
    EXPECT_NE(op.asn, 0u);
    EXPECT_TRUE(asns.insert(op.asn).second);
  }
}

TEST_P(WorldSeedProperty, SeedChangesLayoutButNotShape) {
  const World a = Make(GetParam());
  const World b = Make(GetParam() + 1);
  // Same country plan => similar sizes...
  EXPECT_NEAR(static_cast<double>(a.subnets().size()) / b.subnets().size(), 1.0, 0.1);
  // ...but different operator identities.
  EXPECT_NE(a.operators()[0].asn, b.operators()[0].asn);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldSeedProperty,
                         ::testing::Values(7u, 8u, 12345u, 999983u));

class WorldScaleProperty : public ::testing::TestWithParam<double> {};

TEST_P(WorldScaleProperty, BlockCountsScaleLinearly) {
  const double scale = GetParam();
  WorldConfig config = WorldConfig::Paper(scale);
  // Restrict to a handful of countries to keep the test fast.
  std::erase_if(config.countries, [](const CountryProfile& p) {
    return p.iso2 != "US" && p.iso2 != "DE" && p.iso2 != "IN" && p.iso2 != "GH";
  });
  const World w = World::Generate(config);
  std::size_t active = 0;
  for (const Subnet& s : w.subnets()) {
    if (s.demand_du > 0.0) ++active;
  }
  // Roughly linear in scale: the four kept countries absorb their
  // continents' whole budgets, so compare against the continent totals.
  double expected = 0.0;
  for (geo::Continent c : {geo::Continent::kNorthAmerica, geo::Continent::kEurope,
                           geo::Continent::kAsia, geo::Continent::kAfrica}) {
    expected += config.continent_blocks[static_cast<std::size_t>(c)].active_v4 * scale;
  }
  EXPECT_GT(static_cast<double>(active), expected * 0.8);
  EXPECT_LT(static_cast<double>(active), expected * 2.2);
}

INSTANTIATE_TEST_SUITE_P(Scales, WorldScaleProperty,
                         ::testing::Values(0.001, 0.003, 0.01));

}  // namespace
}  // namespace cellspot::simnet
