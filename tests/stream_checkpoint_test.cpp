#include "cellspot/stream/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "cellspot/obs/metrics.hpp"

namespace cellspot::stream {
namespace {

namespace fs = std::filesystem;

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

std::uint64_t CounterValue(std::string_view name) {
  return obs::MetricsRegistry::Global().counter(name).value();
}

void CorruptFile(const fs::path& path) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekp(12);
  char byte = 0;
  f.seekg(12);
  f.get(byte);
  f.seekp(12);
  f.put(static_cast<char>(byte ^ 0x5A));
}

constexpr std::uint64_t kHash = 0xfeedfacecafebeefULL;

TEST(CheckpointStore, SaveAndLoadRoundTrip) {
  obs::MetricsRegistry::Global().ResetForTest();
  CheckpointStore store(FreshDir("ckpt_roundtrip"), kHash);
  ASSERT_TRUE(store.Save(17, "state-at-17"));
  const auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->tick, 17u);
  EXPECT_EQ(loaded->payload, "state-at-17");
  EXPECT_EQ(CounterValue("stream.checkpoint.saved"), 1u);
  EXPECT_EQ(CounterValue("stream.checkpoint.restored"), 1u);
}

TEST(CheckpointStore, EmptyDirectoryRestoresNothing) {
  CheckpointStore store(FreshDir("ckpt_empty"), kHash);
  EXPECT_EQ(store.LoadLatest(), std::nullopt);
}

TEST(CheckpointStore, KeepsOnlyTwoGenerationsAndLoadsNewest) {
  CheckpointStore store(FreshDir("ckpt_prune"), kHash);
  for (std::uint64_t tick : {10u, 20u, 30u, 40u}) {
    ASSERT_TRUE(store.Save(tick, "tick=" + std::to_string(tick)));
  }
  EXPECT_FALSE(fs::exists(store.PathForTick(10)));
  EXPECT_FALSE(fs::exists(store.PathForTick(20)));
  EXPECT_TRUE(fs::exists(store.PathForTick(30)));
  EXPECT_TRUE(fs::exists(store.PathForTick(40)));
  const auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->tick, 40u);
}

TEST(CheckpointStore, CorruptNewestFallsBackToPreviousGeneration) {
  obs::MetricsRegistry::Global().ResetForTest();
  CheckpointStore store(FreshDir("ckpt_fallback"), kHash);
  ASSERT_TRUE(store.Save(100, "older-good"));
  ASSERT_TRUE(store.Save(200, "newer-bad"));
  CorruptFile(store.PathForTick(200));

  const auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.has_value());  // never fatal: previous generation wins
  EXPECT_EQ(loaded->tick, 100u);
  EXPECT_EQ(loaded->payload, "older-good");
  EXPECT_EQ(CounterValue("stream.checkpoint.corrupt"), 1u);
  // The corrupt file is quarantined out of the scan, not retried forever.
  EXPECT_FALSE(fs::exists(store.PathForTick(200)));
  EXPECT_TRUE(fs::exists(store.PathForTick(200).string() + ".corrupt"));
}

TEST(CheckpointStore, AllGenerationsCorruptIsEmptyRestoreNotFatal) {
  obs::MetricsRegistry::Global().ResetForTest();
  CheckpointStore store(FreshDir("ckpt_all_bad"), kHash);
  ASSERT_TRUE(store.Save(1, "a"));
  ASSERT_TRUE(store.Save(2, "b"));
  CorruptFile(store.PathForTick(1));
  CorruptFile(store.PathForTick(2));
  EXPECT_EQ(store.LoadLatest(), std::nullopt);
  EXPECT_EQ(CounterValue("stream.checkpoint.corrupt"), 2u);
}

TEST(CheckpointStore, IncompatibleConfigHashIsSkipped) {
  obs::MetricsRegistry::Global().ResetForTest();
  const fs::path dir = FreshDir("ckpt_config");
  {
    CheckpointStore old_config(dir, kHash);
    ASSERT_TRUE(old_config.Save(5, "old-world"));
  }
  CheckpointStore new_config(dir, kHash + 1);
  EXPECT_EQ(new_config.LoadLatest(), std::nullopt);
  EXPECT_EQ(CounterValue("stream.checkpoint.incompatible"), 1u);
  // Skipped, not quarantined: the file is still valid for its own config.
  CheckpointStore old_again(dir, kHash);
  const auto loaded = old_again.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->payload, "old-world");
}

TEST(CheckpointStore, MixedCompatibilityPicksNewestUsable) {
  const fs::path dir = FreshDir("ckpt_mixed");
  {
    CheckpointStore compatible(dir, kHash);
    ASSERT_TRUE(compatible.Save(50, "usable"));
  }
  CheckpointStore store(dir, kHash);
  {
    CheckpointStore other(dir, kHash + 7);
    ASSERT_TRUE(other.Save(60, "foreign"));  // newer but incompatible
  }
  const auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->tick, 50u);
  EXPECT_EQ(loaded->payload, "usable");
}

}  // namespace
}  // namespace cellspot::stream
