// The streaming daemon's central guarantee: once each subnet's final
// cumulative frame has been applied, the daemon's exports are
// byte-identical to the batch analysis::Pipeline — at any thread count,
// across a mid-stream kill+recover from a checkpoint, and through a
// shed-mode overload burst.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "cellspot/analysis/pipeline.hpp"
#include "cellspot/cdn/event_stream.hpp"
#include "cellspot/exec/executor.hpp"
#include "cellspot/simnet/world.hpp"
#include "cellspot/snapshot/serde.hpp"
#include "cellspot/snapshot/snapshot.hpp"
#include "cellspot/stream/daemon.hpp"

namespace cellspot {
namespace {

namespace fs = std::filesystem;

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

analysis::Pipeline::Config TestConfig() {
  return {.world = simnet::WorldConfig::Tiny(), .classifier = {}, .filters = {},
          .snapshot_dir = {}};
}

struct BatchReference {
  std::string datasets;
  std::string classified;
};

/// Batch ground truth at a given thread count, as canonical snapshot
/// bytes (the strictest equality the repo can express).
BatchReference RunBatch(exec::Executor& executor) {
  analysis::Pipeline pipeline(TestConfig(), executor);
  pipeline.Classify();
  const analysis::Experiment& e = pipeline.experiment();
  return {
      snapshot::EncodeSnapshot(snapshot::EncodeDatasets(e.beacons, e.demand)),
      snapshot::EncodeSnapshot(snapshot::EncodeClassified(e.classified)),
  };
}

BatchReference ExportDaemon(const stream::StreamDaemon& daemon) {
  return {
      snapshot::EncodeSnapshot(
          snapshot::EncodeDatasets(daemon.ExportBeacons(), daemon.ExportDemand())),
      snapshot::EncodeSnapshot(snapshot::EncodeClassified(daemon.ExportClassified())),
  };
}

/// Drive Tick() until the queue is drained, then once more so the
/// staleness sweep settles (mirrors RunUntilClosed's shutdown tick).
void DrainWithTicks(stream::StreamDaemon& daemon) {
  while (daemon.queue().size() > 0) daemon.Tick();
  daemon.Tick();
}

TEST(StreamDeterminism, CleanReplayMatchesBatchAtOneTwoAndEightThreads) {
  const simnet::World world = simnet::World::Generate(simnet::WorldConfig::Tiny());
  for (const unsigned threads : {1u, 2u, 8u}) {
    exec::Executor ex(threads);
    const BatchReference batch = RunBatch(ex);

    const cdn::EventStreamGenerator generator(world, {.rounds = 4});
    const std::vector<std::string> frames = generator.GenerateFrames(ex);
    ASSERT_FALSE(frames.empty());

    stream::DaemonConfig config;
    config.queue_capacity = frames.size();
    config.backpressure = stream::BackpressurePolicy::kBlock;
    config.max_events_per_tick = 512;
    stream::StreamDaemon daemon(world, {}, config);
    for (const std::string& frame : frames) ASSERT_TRUE(daemon.queue().Push(frame));
    DrainWithTicks(daemon);

    const BatchReference streamed = ExportDaemon(daemon);
    EXPECT_EQ(streamed.datasets, batch.datasets) << "threads " << threads;
    EXPECT_EQ(streamed.classified, batch.classified) << "threads " << threads;
    EXPECT_EQ(daemon.stats().corrupt, 0u);
    EXPECT_EQ(daemon.stats().applied, frames.size());
  }
}

TEST(StreamDeterminism, KillAndRecoverFromCheckpointConverges) {
  const simnet::World world = simnet::World::Generate(simnet::WorldConfig::Tiny());
  exec::Executor ex(2);
  const BatchReference batch = RunBatch(ex);

  const cdn::EventStreamGenerator generator(world, {.rounds = 4});
  const std::vector<std::string> frames = generator.GenerateFrames(ex);
  const std::size_t kill_at = frames.size() * 3 / 5;
  const std::size_t resume_at = frames.size() * 2 / 5;  // replay overlap

  const std::uint64_t hash =
      stream::StreamDaemon::ConfigHash(simnet::WorldConfig::Tiny(), {});
  stream::CheckpointStore store(FreshDir("stream_det_ckpt"), hash);

  stream::DaemonConfig config;
  config.queue_capacity = frames.size();
  config.backpressure = stream::BackpressurePolicy::kBlock;
  config.max_events_per_tick = 256;
  {
    // First life: ingest a prefix, checkpoint, die (scope exit).
    stream::StreamDaemon daemon(world, {}, config, &store);
    for (std::size_t i = 0; i < kill_at; ++i) {
      ASSERT_TRUE(daemon.queue().Push(frames[i]));
    }
    DrainWithTicks(daemon);
    ASSERT_TRUE(daemon.Checkpoint());
  }

  // Second life: restore, then replay from before the kill point — the
  // overlap is deduplicated by per-subnet seqs, not double-applied.
  stream::StreamDaemon recovered(world, {}, config, &store);
  ASSERT_TRUE(recovered.TryRestore());
  EXPECT_GT(recovered.tick(), 0u);
  for (std::size_t i = resume_at; i < frames.size(); ++i) {
    ASSERT_TRUE(recovered.queue().Push(frames[i]));
  }
  DrainWithTicks(recovered);
  EXPECT_GT(recovered.stats().duplicate + recovered.stats().stale_seq, 0u);

  const BatchReference streamed = ExportDaemon(recovered);
  EXPECT_EQ(streamed.datasets, batch.datasets);
  EXPECT_EQ(streamed.classified, batch.classified);
}

TEST(StreamDeterminism, ShedModeOverloadBurstConverges) {
  const simnet::World world = simnet::World::Generate(simnet::WorldConfig::Tiny());
  exec::Executor ex(2);
  const BatchReference batch = RunBatch(ex);

  const cdn::EventStreamGenerator generator(world, {.rounds = 4});
  const std::vector<std::string> frames = generator.GenerateFrames(ex);
  const std::size_t final_begin = generator.FinalRoundBegin(frames.size());
  ASSERT_LT(final_begin, frames.size());

  stream::DaemonConfig config;
  config.queue_capacity = 32;  // far smaller than the burst
  config.backpressure = stream::BackpressurePolicy::kShedOldest;
  config.max_events_per_tick = 16;
  stream::StreamDaemon daemon(world, {}, config);
  auto& q = daemon.queue();

  // Overload burst: rounds 1..R-1 slam a tiny queue with no consumer
  // ticks, shedding most of them. Convergence does not care — every
  // frame restates cumulative state.
  for (std::size_t i = 0; i < final_begin; ++i) q.Push(frames[i]);
  EXPECT_GT(q.shed_oldest(), 0u);

  // Final round: delivered losslessly by draining before each push
  // (the CLI producer uses PushWait for the same guarantee).
  for (std::size_t i = final_begin; i < frames.size(); ++i) {
    while (q.size() >= q.capacity()) daemon.Tick();
    ASSERT_TRUE(q.Push(frames[i]));
  }
  DrainWithTicks(daemon);

  const BatchReference streamed = ExportDaemon(daemon);
  EXPECT_EQ(streamed.datasets, batch.datasets);
  EXPECT_EQ(streamed.classified, batch.classified);
}

}  // namespace
}  // namespace cellspot
