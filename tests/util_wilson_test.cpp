#include "cellspot/util/metrics.hpp"

#include <gtest/gtest.h>

namespace cellspot::util {
namespace {

TEST(WilsonScore, ZeroTrialsIsVacuous) {
  const auto i = WilsonScoreInterval(0, 0);
  EXPECT_DOUBLE_EQ(i.lower, 0.0);
  EXPECT_DOUBLE_EQ(i.upper, 1.0);
}

TEST(WilsonScore, RejectsBadInput) {
  EXPECT_THROW((void)WilsonScoreInterval(5, 3), std::invalid_argument);
  EXPECT_THROW((void)WilsonScoreInterval(1, 2, -1.0), std::invalid_argument);
}

TEST(WilsonScore, SmallSampleIsHumble) {
  // 1-of-1 cellular: the point estimate is 1.0 but the 95% lower bound
  // is ~0.2 — the whole reason for the conservative classifier variant.
  const auto i = WilsonScoreInterval(1, 1);
  EXPECT_NEAR(i.lower, 0.2065, 0.01);
  EXPECT_DOUBLE_EQ(i.upper, 1.0);
}

TEST(WilsonScore, LargeSampleConvergesToRatio) {
  const auto i = WilsonScoreInterval(900, 1000);
  EXPECT_NEAR(i.lower, 0.88, 0.01);
  EXPECT_NEAR(i.upper, 0.917, 0.01);
  EXPECT_LT(i.upper - i.lower, 0.05);
}

TEST(WilsonScore, ContainsPointEstimate) {
  for (std::uint64_t trials : {1ULL, 5ULL, 20ULL, 500ULL}) {
    for (std::uint64_t successes = 0; successes <= trials;
         successes += std::max<std::uint64_t>(1, trials / 4)) {
      const auto i = WilsonScoreInterval(successes, trials);
      const double p = static_cast<double>(successes) / trials;
      EXPECT_LE(i.lower, p + 1e-12);
      EXPECT_GE(i.upper, p - 1e-12);
      EXPECT_GE(i.lower, 0.0);
      EXPECT_LE(i.upper, 1.0);
    }
  }
}

TEST(WilsonScore, IntervalShrinksWithSamples) {
  double prev_width = 1.0;
  for (std::uint64_t n : {2ULL, 10ULL, 50ULL, 250ULL, 1000ULL}) {
    const auto i = WilsonScoreInterval(n / 2, n);
    const double width = i.upper - i.lower;
    EXPECT_LT(width, prev_width);
    prev_width = width;
  }
}

TEST(WilsonScore, ZeroZGivesPointInterval) {
  const auto i = WilsonScoreInterval(3, 10, 0.0);
  EXPECT_NEAR(i.lower, 0.3, 1e-12);
  EXPECT_NEAR(i.upper, 0.3, 1e-12);
}

}  // namespace
}  // namespace cellspot::util
