// Tier-1 layering/audit gate: runs cellspot-audit over this checkout
// against the committed baseline, exactly as `tools/ci.sh lint` does.
// Plain ctest therefore fails the moment a change introduces a new
// finding — a layering back-edge, a lock held across an executor seam,
// a swallowed catch-all, a stale waiver — without anyone remembering to
// run the lint step. Known debt lives in tools/lint/baseline.json, not
// here.
#include <sys/wait.h>

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#ifndef CELLSPOT_LINT_BIN
#error "CELLSPOT_LINT_BIN must point at the cellspot-audit binary"
#endif
#ifndef CELLSPOT_AUDIT_ROOT
#error "CELLSPOT_AUDIT_ROOT must point at the repository root"
#endif

namespace {

TEST(AuditTree, RepositoryIsCleanAgainstBaseline) {
  const std::string root = CELLSPOT_AUDIT_ROOT;
  const std::string cmd = std::string(CELLSPOT_LINT_BIN) + " --root '" + root +
                          "' --baseline '" + root +
                          "/tools/lint/baseline.json'";
  const int status = std::system(cmd.c_str());
  const int exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  EXPECT_EQ(exit_code, 0)
      << "cellspot-audit found new findings (printed above). Fix them, "
         "waive them with an explained pragma, or — for accepted debt — "
         "re-bless with:  cellspot-audit --root . --baseline "
         "tools/lint/baseline.json --update-baseline";
}

}  // namespace
