#include "cellspot/geo/country.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cellspot::geo {
namespace {

TEST(Continent, NamesAndCodes) {
  EXPECT_EQ(ContinentName(Continent::kNorthAmerica), "North America");
  EXPECT_EQ(ContinentCode(Continent::kNorthAmerica), "NA");
  EXPECT_EQ(ContinentCode(Continent::kAfrica), "AF");
  EXPECT_EQ(ContinentFromCode("SA"), Continent::kSouthAmerica);
  EXPECT_FALSE(ContinentFromCode("XX").has_value());
}

TEST(Continent, AllContinentsAreDistinct) {
  std::set<Continent> seen;
  for (Continent c : AllContinents()) seen.insert(c);
  EXPECT_EQ(seen.size(), kContinentCount);
}

TEST(WorldCountries, SortedByIsoAndUnique) {
  const auto world = WorldCountries();
  ASSERT_GT(world.size(), 100u);
  for (std::size_t i = 1; i < world.size(); ++i) {
    EXPECT_LT(world[i - 1].iso2, world[i].iso2);
  }
}

TEST(WorldCountries, AllEntriesSane) {
  for (const Country& c : WorldCountries()) {
    EXPECT_EQ(c.iso2.size(), 2u) << c.name;
    EXPECT_FALSE(c.name.empty());
    EXPECT_GT(c.subscribers_millions, 0.0) << c.name;
  }
}

TEST(FindCountry, KnownLookups) {
  const Country* us = FindCountry("US");
  ASSERT_NE(us, nullptr);
  EXPECT_EQ(us->name, "United States");
  EXPECT_EQ(us->continent, Continent::kNorthAmerica);
  EXPECT_GT(us->subscribers_millions, 300.0);

  const Country* gh = FindCountry("GH");
  ASSERT_NE(gh, nullptr);
  EXPECT_EQ(gh->continent, Continent::kAfrica);

  EXPECT_EQ(FindCountry("XX"), nullptr);
  EXPECT_EQ(FindCountry(""), nullptr);
  EXPECT_EQ(FindCountry("us"), nullptr);  // case-sensitive by contract
}

TEST(FindCountry, PaperHighlightCountriesExist) {
  // Countries the paper's findings single out must exist in the table.
  for (const char* iso : {"US", "IN", "ID", "JP", "GH", "LA", "FR", "DZ",
                          "HK", "BR", "NG", "VN", "SA", "MM", "CN", "FI",
                          "BO", "FJ", "AU"}) {
    EXPECT_NE(FindCountry(iso), nullptr) << iso;
  }
}

TEST(ContinentAggregates, SubscriberTotalsMatchPaperScale) {
  // Table 8 reports (in millions): OC 43.3, AF 954, SA 499, EU 968,
  // NA 594, AS(total incl China) ~4131. Our table should land within
  // ~15% of each.
  EXPECT_NEAR(ContinentSubscribersMillions(Continent::kOceania), 43.3, 8.0);
  EXPECT_NEAR(ContinentSubscribersMillions(Continent::kAfrica), 954.0, 150.0);
  EXPECT_NEAR(ContinentSubscribersMillions(Continent::kSouthAmerica), 499.0, 75.0);
  EXPECT_NEAR(ContinentSubscribersMillions(Continent::kEurope), 968.0, 150.0);
  EXPECT_NEAR(ContinentSubscribersMillions(Continent::kNorthAmerica), 594.0, 90.0);
  // Asia excluding China should approximate the paper's 2766M.
  const double asia = ContinentSubscribersMillions(Continent::kAsia);
  const double china = FindCountry("CN")->subscribers_millions;
  EXPECT_NEAR(asia - china, 2766.0, 420.0);
}

TEST(ContinentAggregates, CountryCountsSumToWorld) {
  std::size_t total = 0;
  for (Continent c : AllContinents()) total += ContinentCountryCount(c);
  EXPECT_EQ(total, WorldCountries().size());
}

}  // namespace
}  // namespace cellspot::geo
