// Columnar table invariants and engine core semantics on synthetic
// data: dictionary encoding, every filter operator, group-by aggregates,
// order/limit, projection, categorized plan errors, and byte-identical
// output at 1/2/8 threads.
#include "cellspot/query/engine.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cellspot/exec/executor.hpp"
#include "cellspot/query/table.hpp"
#include "cellspot/util/sink.hpp"

namespace cellspot::query {
namespace {

std::string RenderCsv(const Table& t) {
  std::stringstream out;
  const auto sink = util::MakeTableSink(util::TableFormat::kCsv, out);
  RenderTable(t, *sink);
  return out.str();
}

template <typename Fn>
QueryErrorCode CodeOf(Fn fn) {
  try {
    fn();
  } catch (const QueryError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected QueryError";
  return QueryErrorCode::kBadPlan;
}

/// id = 0..n-1, val = (id % 7) * 0.5, tag cycles a/b/c.
Table SampleTable(std::size_t n = 12) {
  TableBuilder b;
  const std::size_t id = b.AddColumn("id", ColumnType::kU64);
  const std::size_t val = b.AddColumn("val", ColumnType::kF64);
  const std::size_t tag = b.AddColumn("tag", ColumnType::kStr);
  const char* tags[] = {"a", "b", "c"};
  for (std::size_t i = 0; i < n; ++i) {
    b.AppendU64(id, i);
    b.AppendF64(val, static_cast<double>(i % 7) * 0.5);
    b.AppendStr(tag, tags[i % 3]);
  }
  return b.Finish();
}

TEST(TableInvariants, DictionaryIsFirstAppearanceOrdered) {
  const Table t = SampleTable();
  const Column* tag = t.FindColumn("tag");
  ASSERT_NE(tag, nullptr);
  ASSERT_EQ(tag->dict.size(), 3u);
  EXPECT_EQ(tag->dict[0], "a");
  EXPECT_EQ(tag->dict[1], "b");
  EXPECT_EQ(tag->dict[2], "c");
  EXPECT_EQ(tag->Str(0), "a");
  EXPECT_EQ(tag->Str(4), "b");
  EXPECT_EQ(t.row_count(), 12u);
}

TEST(TableInvariants, RaggedColumnsRejected) {
  TableBuilder b;
  const std::size_t a = b.AddColumn("a", ColumnType::kU64);
  const std::size_t c = b.AddColumn("b", ColumnType::kU64);
  b.AppendU64(a, 1);
  b.AppendU64(a, 2);
  b.AppendU64(c, 1);
  EXPECT_EQ(CodeOf([&] { (void)b.Finish(); }), QueryErrorCode::kBadTable);
}

TEST(TableInvariants, DuplicateNamesRejected) {
  std::vector<Column> cols(2);
  cols[0].name = "x";
  cols[1].name = "x";
  EXPECT_EQ(CodeOf([&] { (void)Table(std::move(cols)); }), QueryErrorCode::kBadTable);
}

TEST(TableInvariants, UnknownColumnListsAvailable) {
  const Table t = SampleTable();
  try {
    (void)t.ColumnIndex("nope");
    FAIL() << "expected QueryError";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.code(), QueryErrorCode::kUnknownColumn);
    EXPECT_NE(std::string(e.what()).find("id"), std::string::npos);
  }
}

TEST(EngineFilter, EveryNumericOperator) {
  const Table t = SampleTable();
  const Engine engine(t);
  const auto count = [&](CompareOp op, std::uint64_t lit) {
    Plan plan;
    plan.filters.push_back({"id", op, Value::U64(lit)});
    return engine.Run(plan).row_count();
  };
  EXPECT_EQ(count(CompareOp::kEq, 3), 1u);
  EXPECT_EQ(count(CompareOp::kNe, 3), 11u);
  EXPECT_EQ(count(CompareOp::kLt, 3), 3u);
  EXPECT_EQ(count(CompareOp::kLe, 3), 4u);
  EXPECT_EQ(count(CompareOp::kGt, 3), 8u);
  EXPECT_EQ(count(CompareOp::kGe, 3), 9u);
}

TEST(EngineFilter, StringEqualityAndAbsentLiteral) {
  const Table t = SampleTable();
  const Engine engine(t);
  Plan plan;
  plan.filters.push_back({"tag", CompareOp::kEq, Value::Str("a")});
  EXPECT_EQ(engine.Run(plan).row_count(), 4u);

  // A literal missing from the dictionary: = matches nothing, !=
  // matches everything.
  plan.filters[0] = {"tag", CompareOp::kEq, Value::Str("zz")};
  EXPECT_EQ(engine.Run(plan).row_count(), 0u);
  plan.filters[0] = {"tag", CompareOp::kNe, Value::Str("zz")};
  EXPECT_EQ(engine.Run(plan).row_count(), 12u);

  plan.filters[0] = {"tag", CompareOp::kLt, Value::Str("b")};
  EXPECT_EQ(CodeOf([&] { (void)engine.Run(plan); }), QueryErrorCode::kTypeMismatch);
  plan.filters[0] = {"tag", CompareOp::kEq, Value::U64(1)};
  EXPECT_EQ(CodeOf([&] { (void)engine.Run(plan); }), QueryErrorCode::kTypeMismatch);
}

TEST(EngineFilter, ConjunctionPreservesRowOrder) {
  const Table t = SampleTable();
  const Engine engine(t);
  Plan plan;
  plan.filters.push_back({"tag", CompareOp::kEq, Value::Str("a")});
  plan.filters.push_back({"id", CompareOp::kGe, Value::U64(3)});
  const Table out = engine.Run(plan);
  const Column* id = out.FindColumn("id");
  ASSERT_NE(id, nullptr);
  ASSERT_EQ(id->u64.size(), 3u);  // rows 3, 6, 9
  EXPECT_EQ(id->u64[0], 3u);
  EXPECT_EQ(id->u64[1], 6u);
  EXPECT_EQ(id->u64[2], 9u);
}

TEST(EngineGroup, AllAggregateKinds) {
  // Four rows, one group: samples 1, 2, 3, 4.
  TableBuilder b;
  const std::size_t v = b.AddColumn("v", ColumnType::kF64);
  for (double x : {1.0, 2.0, 3.0, 4.0}) b.AppendF64(v, x);
  const Table t = b.Finish();
  Plan plan;
  plan.aggregates.push_back({AggKind::kCount, "", 0.5, "n"});
  plan.aggregates.push_back({AggKind::kSum, "v", 0.5, "s"});
  plan.aggregates.push_back({AggKind::kMean, "v", 0.5, "m"});
  plan.aggregates.push_back({AggKind::kMin, "v", 0.5, "lo"});
  plan.aggregates.push_back({AggKind::kMax, "v", 0.5, "hi"});
  plan.aggregates.push_back({AggKind::kQuantile, "v", 0.5, "med"});
  const Table out = Engine(t).Run(plan);
  ASSERT_EQ(out.row_count(), 1u);
  EXPECT_EQ(out.FindColumn("n")->u64[0], 4u);
  EXPECT_EQ(out.FindColumn("s")->f64[0], 10.0);
  EXPECT_EQ(out.FindColumn("m")->f64[0], 2.5);
  EXPECT_EQ(out.FindColumn("lo")->f64[0], 1.0);
  EXPECT_EQ(out.FindColumn("hi")->f64[0], 4.0);
  EXPECT_EQ(out.FindColumn("med")->f64[0], 2.0);  // smallest x with F(x) >= 0.5
}

TEST(EngineGroup, GroupsLandInFirstAppearanceOrder) {
  const Table t = SampleTable();
  Plan plan;
  plan.group_by = {"tag"};
  plan.aggregates.push_back({AggKind::kCount, "", 0.5, "n"});
  const Table out = Engine(t).Run(plan);
  ASSERT_EQ(out.row_count(), 3u);
  EXPECT_EQ(out.FindColumn("tag")->Str(0), "a");
  EXPECT_EQ(out.FindColumn("tag")->Str(1), "b");
  EXPECT_EQ(out.FindColumn("tag")->Str(2), "c");
  EXPECT_EQ(out.FindColumn("n")->u64[0], 4u);
}

TEST(EngineGroup, GlobalAggregateOverZeroRowsYieldsOneRow) {
  const Table t = SampleTable();
  Plan plan;
  plan.filters.push_back({"id", CompareOp::kGt, Value::U64(999)});
  plan.aggregates.push_back({AggKind::kCount, "", 0.5, "n"});
  plan.aggregates.push_back({AggKind::kSum, "val", 0.5, "s"});
  const Table out = Engine(t).Run(plan);
  ASSERT_EQ(out.row_count(), 1u);
  EXPECT_EQ(out.FindColumn("n")->u64[0], 0u);
  EXPECT_EQ(out.FindColumn("s")->f64[0], 0.0);
}

TEST(EngineGroup, PlanErrors) {
  const Table t = SampleTable();
  const Engine engine(t);
  Plan plan;
  plan.columns = {"id"};
  plan.aggregates.push_back({AggKind::kCount, "", 0.5, ""});
  EXPECT_EQ(CodeOf([&] { (void)engine.Run(plan); }), QueryErrorCode::kBadPlan);

  plan.columns.clear();
  plan.aggregates[0] = {AggKind::kSum, "tag", 0.5, ""};
  EXPECT_EQ(CodeOf([&] { (void)engine.Run(plan); }), QueryErrorCode::kTypeMismatch);

  plan.aggregates[0] = {AggKind::kQuantile, "val", 1.5, ""};
  EXPECT_EQ(CodeOf([&] { (void)engine.Run(plan); }), QueryErrorCode::kBadPlan);

  plan.aggregates[0] = {AggKind::kSum, "val", 0.5, ""};
  plan.group_by = {"nope"};
  EXPECT_EQ(CodeOf([&] { (void)engine.Run(plan); }), QueryErrorCode::kUnknownColumn);
}

TEST(EngineSelect, ProjectionAndOrderLimit) {
  const Table t = SampleTable();
  Plan plan;
  plan.columns = {"val", "id"};
  plan.order_by.push_back({"id", true});
  plan.limit = 2;
  const Table out = Engine(t).Run(plan);
  ASSERT_EQ(out.column_count(), 2u);
  EXPECT_EQ(out.column(0).name, "val");
  EXPECT_EQ(out.column(1).name, "id");
  ASSERT_EQ(out.row_count(), 2u);
  EXPECT_EQ(out.FindColumn("id")->u64[0], 11u);
  EXPECT_EQ(out.FindColumn("id")->u64[1], 10u);
}

TEST(EngineSelect, StableSortKeepsPriorOrderOnTies) {
  const Table t = SampleTable();
  Plan plan;
  plan.order_by.push_back({"tag", false});
  const Table out = Engine(t).Run(plan);
  // Within tag "a", source row order (ids 0, 3, 6, 9) survives.
  const Column* id = out.FindColumn("id");
  EXPECT_EQ(id->u64[0], 0u);
  EXPECT_EQ(id->u64[1], 3u);
  EXPECT_EQ(id->u64[2], 6u);
  EXPECT_EQ(id->u64[3], 9u);
}

TEST(EngineDeterminism, ByteIdenticalAtAnyThreadCount) {
  const Table t = SampleTable(10'000);
  Plan plan;
  plan.filters.push_back({"val", CompareOp::kGt, Value::F64(0.75)});
  plan.group_by = {"tag"};
  plan.aggregates.push_back({AggKind::kSum, "val", 0.5, ""});
  plan.aggregates.push_back({AggKind::kCount, "", 0.5, ""});
  plan.aggregates.push_back({AggKind::kMean, "val", 0.5, ""});
  plan.aggregates.push_back({AggKind::kQuantile, "val", 0.9, ""});
  plan.order_by.push_back({"sum(val)", true});

  std::vector<std::string> rendered;
  for (const unsigned threads : {1u, 2u, 8u}) {
    exec::Executor executor(threads);
    rendered.push_back(RenderCsv(Engine(t, executor).Run(plan)));
  }
  EXPECT_EQ(rendered[0], rendered[1]);
  EXPECT_EQ(rendered[0], rendered[2]);
  EXPECT_NE(rendered[0].find("sum(val)"), std::string::npos);
}

}  // namespace
}  // namespace cellspot::query
