// Differential property test locking FlatLpm to PrefixTrie: on seeded
// random prefix sets (nested, overlapping, both families) every lookup
// form — single, with-length, batch, exec-chunked at 1/2/8 threads —
// must agree with the trie bit for bit. Also covers the payload
// round-trip (Encode/Decode/View), the mmap-served snapshot path
// (MappedSnapshot + StageCache lpm entry) and a corruption matrix over
// the lpm snapshot file.
#include "cellspot/netaddr/flat_lpm.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cellspot/asdb/as_database.hpp"
#include "cellspot/exec/executor.hpp"
#include "cellspot/faultsim/stream_corruptor.hpp"
#include "cellspot/netaddr/prefix_trie.hpp"
#include "cellspot/obs/metrics.hpp"
#include "cellspot/snapshot/mapped.hpp"
#include "cellspot/snapshot/serde.hpp"
#include "cellspot/snapshot/snapshot.hpp"
#include "cellspot/snapshot/stage_cache.hpp"
#include "cellspot/util/rng.hpp"

namespace cellspot::netaddr {
namespace {

namespace fs = std::filesystem;

IpAddress RandomV4(util::Rng& rng) {
  return IpAddress::V4(static_cast<std::uint32_t>(rng.UniformInt(0, 0xFFFFFFFFULL)));
}

IpAddress RandomV6(util::Rng& rng) {
  std::array<std::uint8_t, 16> bytes{};
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  return IpAddress::V6(bytes);
}

/// A deliberately clumpy random prefix set: half the prefixes are
/// refinements of earlier ones, so nesting and overlap are common.
std::vector<Prefix> RandomPrefixSet(util::Rng& rng, std::size_t count) {
  std::vector<Prefix> prefixes;
  prefixes.reserve(count);
  while (prefixes.size() < count) {
    const bool v6 = rng.Chance(0.35);
    IpAddress addr = v6 ? RandomV6(rng) : RandomV4(rng);
    int length;
    if (!prefixes.empty() && rng.Chance(0.5)) {
      // Refine an existing prefix: same base, longer mask.
      const Prefix& base = prefixes[rng.UniformInt(0, prefixes.size() - 1)];
      const int max_len = base.family() == Family::kIpv4 ? 32 : 128;
      length = static_cast<int>(
          rng.UniformInt(static_cast<std::uint64_t>(base.length()),
                         static_cast<std::uint64_t>(max_len)));
      // Keep the covered-side bits from a fresh draw so siblings differ.
      IpAddress refined = base.address();
      IpAddress noise = base.family() == Family::kIpv4 ? RandomV4(rng) : RandomV6(rng);
      for (int bit = base.length(); bit < length; ++bit) {
        refined = refined.WithBit(bit, noise.GetBit(bit));
      }
      prefixes.emplace_back(refined, length);
      continue;
    }
    const int max_len = v6 ? 128 : 32;
    length = static_cast<int>(rng.UniformInt(1, static_cast<std::uint64_t>(max_len)));
    prefixes.emplace_back(addr, length);
  }
  return prefixes;
}

/// Probe addresses with bias toward stored-prefix boundaries, where
/// off-by-one bugs live: prefix bases, plus uniform random addresses.
std::vector<IpAddress> ProbeSet(util::Rng& rng, const std::vector<Prefix>& prefixes,
                                std::size_t random_count) {
  std::vector<IpAddress> probes;
  probes.reserve(prefixes.size() + random_count);
  for (const Prefix& p : prefixes) probes.push_back(p.address());
  for (std::size_t i = 0; i < random_count; ++i) {
    probes.push_back(rng.Chance(0.35) ? RandomV6(rng) : RandomV4(rng));
  }
  return probes;
}

template <typename T>
void ExpectSameLookups(const PrefixTrie<T>& trie, const FlatLpm<T>& flat,
                       const std::vector<IpAddress>& probes) {
  for (const IpAddress& addr : probes) {
    const T* want = trie.LongestMatch(addr);
    const T* got = flat.LongestMatch(addr);
    ASSERT_EQ(want == nullptr, got == nullptr) << addr.ToString();
    if (want != nullptr) {
      ASSERT_EQ(*want, *got) << addr.ToString();
    }

    const auto want_len = trie.LongestMatchWithLength(addr);
    const auto got_len = flat.LongestMatchWithLength(addr);
    ASSERT_EQ(want_len.has_value(), got_len.has_value()) << addr.ToString();
    if (want_len.has_value()) {
      ASSERT_EQ(want_len->first, got_len->first) << addr.ToString();
      ASSERT_EQ(*want_len->second, *got_len->second) << addr.ToString();
    }
  }
}

TEST(FlatLpmDifferential, MatchesTrieOnSeededRandomSets) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1337ULL, 99991ULL}) {
    util::Rng rng(seed);
    const std::size_t count = 1 + rng.UniformInt(0, 400);
    const std::vector<Prefix> prefixes = RandomPrefixSet(rng, count);
    PrefixTrie<std::uint32_t> trie;
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
      trie.Insert(prefixes[i], static_cast<std::uint32_t>(i + 1));
    }
    const FlatLpm<std::uint32_t> flat = FlatLpm<std::uint32_t>::Build(trie);
    EXPECT_EQ(flat.size(), trie.size());
    ExpectSameLookups(trie, flat, ProbeSet(rng, prefixes, 2000));
  }
}

TEST(FlatLpmDifferential, ZeroLengthPrefixCoversEverything) {
  PrefixTrie<std::uint32_t> trie;
  trie.Insert(Prefix::Parse("0.0.0.0/0"), 7);
  trie.Insert(Prefix::Parse("10.0.0.0/8"), 8);
  trie.Insert(Prefix::Parse("::/0"), 9);
  const auto flat = FlatLpm<std::uint32_t>::Build(trie);
  util::Rng rng(5);
  ExpectSameLookups(trie, flat, ProbeSet(rng, {Prefix::Parse("10.1.2.0/24")}, 500));
  ASSERT_NE(flat.LongestMatch(IpAddress::Parse("255.255.255.255")), nullptr);
  EXPECT_EQ(*flat.LongestMatch(IpAddress::Parse("255.255.255.255")), 7u);
  ASSERT_NE(flat.LongestMatch(IpAddress::Parse("ffff::1")), nullptr);
  EXPECT_EQ(*flat.LongestMatch(IpAddress::Parse("ffff::1")), 9u);
}

TEST(FlatLpmDifferential, EmptyTrie) {
  const auto flat = FlatLpm<std::uint32_t>::Build(PrefixTrie<std::uint32_t>{});
  EXPECT_TRUE(flat.empty());
  EXPECT_EQ(flat.segment_count(), 0u);
  EXPECT_EQ(flat.LongestMatch(IpAddress::Parse("1.2.3.4")), nullptr);
  EXPECT_EQ(flat.LongestMatch(IpAddress::Parse("2001:db8::1")), nullptr);
  // Round-trips through its (valid) empty payload.
  const auto decoded = FlatLpm<std::uint32_t>::Decode(flat.Encode());
  EXPECT_TRUE(decoded.empty());

  const FlatLpm<std::uint32_t> default_constructed;
  EXPECT_TRUE(default_constructed.empty());
  EXPECT_EQ(default_constructed.LongestMatch(IpAddress::Parse("1.2.3.4")), nullptr);
  EXPECT_EQ(FlatLpm<std::uint32_t>::Decode(default_constructed.Encode()).size(), 0u);
}

TEST(FlatLpmDifferential, BatchAndChunkedMatchSingleLookups) {
  util::Rng rng(2024);
  const std::vector<Prefix> prefixes = RandomPrefixSet(rng, 300);
  PrefixTrie<std::uint32_t> trie;
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    trie.Insert(prefixes[i], static_cast<std::uint32_t>(i + 1));
  }
  const auto flat = FlatLpm<std::uint32_t>::Build(trie);
  const std::vector<IpAddress> probes = ProbeSet(rng, prefixes, 3000);

  std::vector<const std::uint32_t*> single(probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) single[i] = flat.LongestMatch(probes[i]);

  std::vector<const std::uint32_t*> batch(probes.size());
  flat.LongestMatchBatch(probes, batch);
  EXPECT_EQ(batch, single);

  std::vector<std::uint32_t> values(probes.size());
  flat.LongestMatchBatch(probes, values, std::uint32_t{0});
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(values[i], single[i] == nullptr ? 0u : *single[i]);
  }

  // Chunked through a real executor: identical output at any width.
  for (const unsigned threads : {1u, 2u, 8u}) {
    exec::Executor executor(threads);
    std::vector<std::uint32_t> chunked(probes.size());
    flat.LongestMatchBatchChunked(
        std::span<const IpAddress>(probes), std::span<std::uint32_t>(chunked),
        std::uint32_t{0}, /*grain=*/64,
        [&](std::size_t n, std::size_t grain, auto&& body) {
          executor.ParallelFor(n, grain, body);
        });
    EXPECT_EQ(chunked, values) << threads << " threads";
  }
}

TEST(FlatLpmDifferential, EncodeDecodeViewRoundTrip) {
  util::Rng rng(31337);
  const std::vector<Prefix> prefixes = RandomPrefixSet(rng, 250);
  PrefixTrie<std::uint32_t> trie;
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    trie.Insert(prefixes[i], static_cast<std::uint32_t>(i + 1));
  }
  const auto flat = FlatLpm<std::uint32_t>::Build(trie);
  const std::string payload = flat.Encode();

  const auto decoded = FlatLpm<std::uint32_t>::Decode(payload);
  EXPECT_EQ(decoded.Encode(), payload);
  EXPECT_FALSE(decoded.is_view());

  // View over an external buffer, which must stay pinned by keepalive
  // even after the original goes away.
  auto buffer = std::make_shared<std::string>(payload);
  auto view = FlatLpm<std::uint32_t>::View(*buffer, buffer);
  EXPECT_TRUE(view.is_view());
  EXPECT_EQ(view.payload_bytes(), payload.size());
  buffer.reset();

  const std::vector<IpAddress> probes = ProbeSet(rng, prefixes, 1500);
  ExpectSameLookups(trie, decoded, probes);
  ExpectSameLookups(trie, view, probes);
}

TEST(FlatLpmDifferential, DecodeRejectsStructuralDamageWithoutCrashing) {
  util::Rng rng(777);
  const std::vector<Prefix> prefixes = RandomPrefixSet(rng, 120);
  PrefixTrie<std::uint32_t> trie;
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    trie.Insert(prefixes[i], static_cast<std::uint32_t>(i + 1));
  }
  const std::string payload = FlatLpm<std::uint32_t>::Build(trie).Encode();

  // Truncations at every length must throw, never read out of bounds.
  for (std::size_t len = 0; len < payload.size(); len += 7) {
    EXPECT_THROW((void)FlatLpm<std::uint32_t>::Decode(payload.substr(0, len)),
                 FlatLpmError);
  }
  // Random byte flips: below the FlatLpm layer there is no CRC, so a
  // flip either trips validation (FlatLpmError) or lands in a value
  // slot and yields a well-formed engine — but never a crash. The
  // snapshot container's CRC is what catches the silent case on disk.
  for (int i = 0; i < 300; ++i) {
    std::string bent = payload;
    bent[rng.UniformInt(0, bent.size() - 1)] ^=
        static_cast<char>(1U << rng.UniformInt(0, 7));
    try {
      const auto decoded = FlatLpm<std::uint32_t>::Decode(bent);
      (void)decoded.LongestMatch(IpAddress::Parse("10.1.2.3"));
      (void)decoded.LongestMatch(IpAddress::Parse("2001:db8::1"));
    } catch (const FlatLpmError&) {
      // rejected: fine
    }
  }
}

// ---- snapshot + mmap serving ---------------------------------------------

std::string ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFileBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::uint64_t CounterValue(std::string_view name) {
  for (const auto& c : obs::MetricsRegistry::Global().Snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

asdb::RoutingTable MakeRib(std::uint64_t seed, std::size_t prefix_count) {
  util::Rng rng(seed);
  asdb::RoutingTable rib;
  for (const Prefix& p : RandomPrefixSet(rng, prefix_count)) {
    rib.Announce(p, static_cast<asdb::AsNumber>(rng.UniformInt(1, 5000)));
  }
  return rib;
}

TEST(FlatLpmSnapshot, MmapServedEngineMatchesBuiltEngine) {
  const fs::path dir = fs::path(::testing::TempDir()) / "lpm_mmap_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path path = dir / "lpm.snap";

  asdb::RoutingTable rib = MakeRib(11, 200);
  snapshot::WriteSnapshotFile(path, snapshot::EncodeRibLpm(rib));

  util::Rng rng(12);
  std::vector<IpAddress> probes = ProbeSet(rng, {}, 2000);

  // The engine keeps the mapping alive after the MappedSnapshot dies.
  asdb::RoutingTable::FlatRib viewed;
  {
    auto snap = snapshot::MappedSnapshot::Open(path);
    EXPECT_TRUE(snap.HasSection(snapshot::kLpmRibSection));
    viewed = snapshot::ViewRibLpm(snap.SectionPayload(snapshot::kLpmRibSection),
                                  snap.keepalive());
  }
  EXPECT_TRUE(viewed.is_view());
  EXPECT_EQ(viewed.size(), rib.size());
  for (const IpAddress& addr : probes) {
    const auto want = rib.OriginOf(addr);
    const asdb::AsNumber* got = viewed.LongestMatch(addr);
    ASSERT_EQ(want.has_value(), got != nullptr) << addr.ToString();
    if (want.has_value()) {
      ASSERT_EQ(*want, *got) << addr.ToString();
    }
  }

  // A fresh table with identical announcements adopts it wholesale.
  asdb::RoutingTable rib2 = MakeRib(11, 200);
  EXPECT_TRUE(rib2.AdoptFlat(std::move(viewed)));
  EXPECT_TRUE(rib2.has_flat());
  for (const IpAddress& addr : probes) {
    ASSERT_EQ(rib.OriginOf(addr), rib2.OriginOf(addr)) << addr.ToString();
  }
}

TEST(FlatLpmSnapshot, AdoptRejectsMismatchedEngine) {
  asdb::RoutingTable rib = MakeRib(21, 100);
  asdb::RoutingTable other = MakeRib(22, 150);
  EXPECT_FALSE(rib.AdoptFlat(other.Flat()));
  EXPECT_TRUE(other.has_flat());
}

class LpmCacheCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::Global().ResetForTest();
    dir_ = fs::path(::testing::TempDir()) /
           ("lpmcorrupt_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    config_ = simnet::WorldConfig::Tiny();
    rib_ = MakeRib(33, 180);
    cache_.emplace(dir_);
    ASSERT_TRUE(cache_->enabled());
    cache_->StoreLpm(config_, rib_);
    path_ = cache_->LpmPath(config_);
    ASSERT_TRUE(fs::exists(path_));
    clean_bytes_ = ReadFileBytes(path_);
  }

  /// The damaged file must miss with `reason`, be quarantined, and a
  /// re-store must bring the warm mmap path back, byte-identical.
  void ExpectRejectedThenRecovers(std::string_view reason) {
    auto loaded = cache_->TryLoadLpm(config_);
    EXPECT_FALSE(loaded.has_value());
    EXPECT_EQ(CounterValue("snapshot.miss." + std::string(reason)), 1u)
        << "expected reason " << reason;
    EXPECT_FALSE(fs::exists(path_)) << "corrupt file must not stay in place";
    EXPECT_TRUE(fs::exists(path_.string() + ".corrupt"));

    cache_->StoreLpm(config_, rib_);
    EXPECT_EQ(ReadFileBytes(path_), clean_bytes_);
    auto reloaded = cache_->TryLoadLpm(config_);
    ASSERT_TRUE(reloaded.has_value());
    EXPECT_EQ(reloaded->Encode(), rib_.Flat().Encode());
  }

  fs::path dir_;
  fs::path path_;
  simnet::WorldConfig config_;
  asdb::RoutingTable rib_;
  std::optional<snapshot::StageCache> cache_;
  std::string clean_bytes_;
};

TEST_F(LpmCacheCorruption, WarmLoadIsAViewAndMatches) {
  auto loaded = cache_->TryLoadLpm(config_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->is_view());
  EXPECT_EQ(CounterValue("snapshot.hit"), 1u);
  ASSERT_TRUE(rib_.AdoptFlat(std::move(*loaded)));
  EXPECT_EQ(CounterValue("lpm.adopt"), 1u);
  util::Rng rng(34);
  asdb::RoutingTable cold = MakeRib(33, 180);
  for (const IpAddress& addr : ProbeSet(rng, {}, 1000)) {
    ASSERT_EQ(cold.OriginOf(addr), rib_.OriginOf(addr)) << addr.ToString();
  }
}

TEST_F(LpmCacheCorruption, TruncationFallsBack) {
  WriteFileBytes(path_, clean_bytes_.substr(0, clean_bytes_.size() / 2));
  ExpectRejectedThenRecovers("truncated");
}

TEST_F(LpmCacheCorruption, MagicFlipFallsBack) {
  std::string bytes = clean_bytes_;
  bytes[0] ^= 0x01;
  WriteFileBytes(path_, bytes);
  ExpectRejectedThenRecovers("bad-magic");
}

TEST_F(LpmCacheCorruption, PayloadFlipFailsCrc) {
  std::string bytes = clean_bytes_;
  bytes.back() ^= 0x40;
  WriteFileBytes(path_, bytes);
  ExpectRejectedThenRecovers("checksum");
}

TEST_F(LpmCacheCorruption, EmptyFileIsTruncated) {
  WriteFileBytes(path_, "");
  ExpectRejectedThenRecovers("truncated");
}

TEST_F(LpmCacheCorruption, StreamCorruptorDamageNeverCrashesOrLies) {
  std::istringstream in(clean_bytes_);
  std::ostringstream out;
  faultsim::StreamCorruptor corruptor(faultsim::FaultMix::Destructive(0.8), 4321);
  const auto stats = corruptor.Corrupt(in, out);
  ASSERT_GT(stats.total_faults(), 0u);
  ASSERT_NE(out.str(), clean_bytes_);
  WriteFileBytes(path_, out.str());

  auto loaded = cache_->TryLoadLpm(config_);
  EXPECT_FALSE(loaded.has_value());
  EXPECT_GE(CounterValue("snapshot.miss"), 1u);
  EXPECT_TRUE(fs::exists(path_.string() + ".corrupt"));

  cache_->StoreLpm(config_, rib_);
  auto reloaded = cache_->TryLoadLpm(config_);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->Encode(), rib_.Flat().Encode());
}

}  // namespace
}  // namespace cellspot::netaddr
