// L001 negative: util/parse.hpp is the sanctioned home of raw parses.
#pragma once
#include <cstdlib>
#include <string>

namespace fixture {
inline double RawParse(const std::string& s) { return std::strtod(s.c_str(), nullptr); }
}
