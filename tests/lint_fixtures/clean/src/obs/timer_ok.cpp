// L003 negative: src/obs/ is the telemetry layer; wall-clock reads are
// its whole purpose.
#include <chrono>

double NowMs() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t.time_since_epoch()).count();
}
