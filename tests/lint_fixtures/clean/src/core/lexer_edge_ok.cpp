// Lexer regression fixtures. Every construct here once desynced the
// lexer; if any regresses, the rule-trigger text hidden in the comments
// and strings below surfaces as a bogus finding and the clean-tree test
// fails.

namespace cellspot::core {

// A line comment continued by a backslash-newline splice stays a \
comment: rand(); std::cout << time(nullptr);

// Digit separators must not open a char literal; if they did, every
// token after this constant would be inside a bogus string.
constexpr long kBigCount = 1'000'000;
constexpr unsigned kMask = 0xFF'FF'00'00u;

// Raw strings with encoding prefixes: the payload is data, not code.
inline const char* kJsonBlob = u8R"({"call": "rand()", "sink": "std::cout"})";
inline const wchar_t* kWidePattern = LR"(std::async(std::cout, rand()))";

// A backslash-newline inside an ordinary string literal splices the
// literal across lines without ending it.
inline const char* kSpliced = "first half rand() \
second half std::cout";

int Answer() { return static_cast<int>(kBigCount & kMask); }

}  // namespace cellspot::core
