// L008 negative: the guard's scope closes before the fan-out and the
// batch lookup, so neither call runs under the mutex.
#include <cstddef>
#include <mutex>
#include <vector>

#include "cellspot/exec/executor.hpp"

namespace cellspot::core {

void FanOutAfterLock(exec::Executor& pool, std::vector<int>& out, std::mutex& mu) {
  std::size_t n = 0;
  {
    std::lock_guard<std::mutex> lock(mu);
    n = out.size();
  }
  pool.ParallelFor(n, [&out](std::size_t i) { out[i] += 1; });
}

template <typename Table>
int SnapshotThenLookup(const Table& table, std::mutex& mu, int key) {
  int adjusted = key;
  {
    std::scoped_lock lock(mu);
    adjusted += 1;
  }
  return table.Lookup(adjusted);
}

}  // namespace cellspot::core
