// L005 negative: guarded header.
#pragma once

namespace fixture {
inline int kGuarded = 1;
}
