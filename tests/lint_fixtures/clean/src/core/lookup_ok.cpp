// L002 negative: hash containers are fine in a TU that is neither in a
// deterministic directory nor named like a serde/report unit.
#include <string>
#include <unordered_map>

int Lookup(const std::string& key) {
  std::unordered_map<std::string, int> index;
  index["a"] = 1;
  const auto it = index.find(key);
  return it == index.end() ? 0 : it->second;
}
