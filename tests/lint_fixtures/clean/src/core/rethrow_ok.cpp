// L010 negative: catch-alls that rethrow or report are fine.
#include <cstdio>

namespace cellspot::core {

int DecodeRecord(const char* text);

int DecodeStrict(const char* text) {
  try {
    return DecodeRecord(text);
  } catch (...) {
    throw;
  }
}

int DecodeCounted(const char* text) {
  try {
    return DecodeRecord(text);
  } catch (...) {
    std::fprintf(stderr, "cellspot: decode failed\n");
  }
  return 0;
}

}  // namespace cellspot::core
