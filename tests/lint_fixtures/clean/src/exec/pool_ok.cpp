// L009 negative: src/exec is the one sanctioned owner of raw threads.
#include <thread>
#include <vector>

namespace cellspot::exec {

void RunWorkers(std::vector<std::thread>& pool) {
  pool.emplace_back([] {});
  for (std::thread& t : pool) {
    if (t.joinable()) t.join();
  }
}

}  // namespace cellspot::exec
