// L004 negative: tools/ is CLI territory; stdout belongs to it.
#include <iostream>

int main() {
  std::cout << "ok\n";
  return 0;
}
