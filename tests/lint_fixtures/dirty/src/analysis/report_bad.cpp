// L002 positive: hash-ordered container in a deterministic-output TU
// (both the include line and the declaration should fire).
#include <string>
#include <unordered_map>

int CountRows() {
  std::unordered_map<std::string, int> rows;
  rows["a"] = 1;
  return static_cast<int>(rows.size());
}
