// L001 positive: raw numeric parse in library code.
#include <string>

int ParsePort(const std::string& field) {
  return std::stoi(field);
}
