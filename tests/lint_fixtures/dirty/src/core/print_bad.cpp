// L004 positive: stdout from library code.
#include <iostream>

void Announce() {
  std::cout << "done\n";
}
