// L009 positive: raw std::thread construction, a detach, and a
// std::async — three findings.
#include <future>
#include <thread>

namespace cellspot::core {

int SpawnRaw() {
  std::thread worker([] {});
  worker.detach();
  auto pending = std::async([] { return 1; });
  return pending.get();
}

}  // namespace cellspot::core
