// L011 positive: a well-formed waiver whose violation no longer exists.

namespace cellspot::core {

// cellspot-lint: allow(L003) the clock read below was removed in a refactor
int Answer() { return 42; }

}  // namespace cellspot::core
