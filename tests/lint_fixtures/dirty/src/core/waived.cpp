// Waiver accepted: a standalone allow() pragma with a reason covers the
// next code line, so the rand() below must NOT be reported.
#include <cstdlib>

long SeedFixture() {
  // cellspot-lint: allow(L003) fixture exercises the waiver path
  return std::rand();
}
