// Waiver rejected: no reason after allow() -> L006, and the violation
// it hoped to cover is still reported.
#include <cstdlib>

long BadSeed() {
  // cellspot-lint: allow(L003)
  return std::rand();
}

// cellspot-lint: allow(banana) not a rule id
long AlsoBad() { return 7; }
