// L010 positive: a catch-all that neither rethrows nor reports.

namespace cellspot::core {

int DecodeRecord(const char* text);

int DecodeOrZero(const char* text) {
  try {
    return DecodeRecord(text);
  } catch (...) {
  }
  return 0;
}

}  // namespace cellspot::core
