// L008 positive: guards held across the executor seam and a batch
// lookup. Both calls fire.
#include <cstddef>
#include <mutex>
#include <vector>

#include "cellspot/exec/executor.hpp"

namespace cellspot::core {

void FanOutUnderLock(exec::Executor& pool, std::vector<int>& out, std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  pool.ParallelFor(out.size(), [&out](std::size_t i) { out[i] += 1; });
}

template <typename Table>
int LookupUnderLock(const Table& table, std::mutex& mu, int key) {
  std::scoped_lock lock(mu);
  return table.Lookup(key);
}

}  // namespace cellspot::core
