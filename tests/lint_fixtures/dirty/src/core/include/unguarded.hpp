// L005 positive: no #pragma once / #ifndef guard before the first
// declaration.
namespace fixture {
inline int kAnswer = 42;
}
