// L003 positives: ambient entropy and the ambient clock.
#include <chrono>
#include <cstdlib>

long Jitter() {
  const long r = std::rand();
  const auto t = std::chrono::steady_clock::now();
  return r + t.time_since_epoch().count();
}
