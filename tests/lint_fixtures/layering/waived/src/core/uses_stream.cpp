// A waived back-edge: allowed through with an inline pragma carrying
// the migration story, and the waiver is consumed (no L011).

// cellspot-lint: allow(L007) event type migration is tracked in ROADMAP.md
#include "cellspot/stream/event.hpp"

namespace cellspot::core {
int UsesStream() { return 1; }
}  // namespace cellspot::core
