#pragma once

#include "cellspot/core/a.hpp"

namespace cellspot::core {
inline int B() { return A() - 1; }
}  // namespace cellspot::core
