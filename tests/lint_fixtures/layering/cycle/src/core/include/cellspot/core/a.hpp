#pragma once

#include "cellspot/core/b.hpp"

namespace cellspot::core {
inline int A() { return B() + 1; }
}  // namespace cellspot::core
