// Seeded back-edge: netaddr (a leaf layer) reaching up into exec.
#include "cellspot/exec/executor.hpp"

namespace cellspot::netaddr {
int Widen(int v) { return v + 1; }
}  // namespace cellspot::netaddr
