// Angle brackets do not launder a cellspot include: the geo edge below
// is a back-edge however it is spelled. <vector> and the allowed util
// include produce nothing.
#include <vector>

#include <cellspot/geo/geo.hpp>

#include "cellspot/util/strings.hpp"

namespace cellspot::core {
int Dimensions() { return 3; }
}  // namespace cellspot::core
