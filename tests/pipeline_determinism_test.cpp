// The pipeline's central guarantee: every stage produces byte-identical
// output at any thread count, so "turn on threads" is never a science
// decision. Also covers the staged API itself — on-demand prerequisites,
// stage timings, re-run invalidation — and the CELLSPOT_SCALE guard.
#include "cellspot/analysis/pipeline.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cellspot/analysis/export.hpp"
#include "cellspot/analysis/reports.hpp"
#include "cellspot/evolution/churn.hpp"
#include "cellspot/exec/executor.hpp"

namespace cellspot {
namespace {

analysis::Pipeline::Config TestConfig() {
  return {.world = simnet::WorldConfig::Tiny(), .classifier = {}, .filters = {}, .snapshot_dir = {}};
}

std::string BeaconCsv(const analysis::Experiment& e) {
  std::ostringstream out;
  e.beacons.SaveCsv(out);
  return out.str();
}

std::string DemandCsv(const analysis::Experiment& e) {
  std::ostringstream out;
  e.demand.SaveCsv(out);
  return out.str();
}

std::vector<asdb::AsNumber> KeptAsns(const analysis::Experiment& e) {
  std::vector<asdb::AsNumber> asns;
  for (const core::AsAggregate& as : e.filtered.kept) asns.push_back(as.asn);
  return asns;
}

TEST(PipelineDeterminism, IdenticalResultsAtOneTwoAndEightThreads) {
  exec::Executor ex1(1);
  analysis::Pipeline reference(TestConfig(), ex1);
  reference.Run();
  const analysis::Experiment& ref = reference.experiment();

  for (const unsigned threads : {2u, 8u}) {
    exec::Executor ex(threads);
    analysis::Pipeline pipeline(TestConfig(), ex);
    pipeline.Run();
    const analysis::Experiment& e = pipeline.experiment();

    // World: same subnets in the same order with the same labels.
    ASSERT_EQ(e.world.subnets().size(), ref.world.subnets().size());
    for (std::size_t i = 0; i < ref.world.subnets().size(); ++i) {
      const simnet::Subnet& a = ref.world.subnets()[i];
      const simnet::Subnet& b = e.world.subnets()[i];
      ASSERT_EQ(a.block, b.block) << "subnet " << i << " threads " << threads;
      ASSERT_EQ(a.asn, b.asn);
      ASSERT_EQ(a.truth_cellular, b.truth_cellular);
      ASSERT_EQ(a.demand_du, b.demand_du);
    }

    // Datasets: CSV exports are byte-identical (same content AND same
    // unordered-map iteration order, i.e. same insertion sequence).
    EXPECT_EQ(BeaconCsv(e), BeaconCsv(ref)) << "threads " << threads;
    EXPECT_EQ(DemandCsv(e), DemandCsv(ref)) << "threads " << threads;

    // Classification: identical cellular sets and per-block ratios.
    EXPECT_EQ(e.classified.cellular(), ref.classified.cellular());
    EXPECT_EQ(e.classified.ratios(), ref.classified.ratios());

    // Aggregation + filtering: identical candidate and kept AS lists in
    // identical order, and identical removal accounting.
    ASSERT_EQ(e.candidates.size(), ref.candidates.size());
    for (std::size_t i = 0; i < ref.candidates.size(); ++i) {
      ASSERT_EQ(e.candidates[i].asn, ref.candidates[i].asn);
      ASSERT_EQ(e.candidates[i].cell_demand_du, ref.candidates[i].cell_demand_du);
    }
    EXPECT_EQ(KeptAsns(e), KeptAsns(ref));
    EXPECT_EQ(e.filtered.removed_low_demand, ref.filtered.removed_low_demand);
    EXPECT_EQ(e.filtered.removed_low_hits, ref.filtered.removed_low_hits);
    EXPECT_EQ(e.filtered.removed_class, ref.filtered.removed_class);
  }
}

TEST(PipelineDeterminism, AggregationShardCountIsOutputInvariant) {
  // The shard count is a placement knob, not a semantic one: any value
  // must reproduce the 1-shard run bit for bit (floats included), at
  // any thread count, without changing the pinned five-stage list.
  exec::Executor ex1(1);
  analysis::Pipeline::Config one_shard = TestConfig();
  one_shard.aggregation_shards = 1;
  analysis::Pipeline reference(one_shard, ex1);
  reference.Run();
  const analysis::Experiment& ref = reference.experiment();
  ASSERT_FALSE(ref.candidates.empty());

  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
    for (const unsigned threads : {1u, 8u}) {
      exec::Executor ex(threads);
      analysis::Pipeline::Config config = TestConfig();
      config.aggregation_shards = shards;
      analysis::Pipeline pipeline(config, ex);
      pipeline.Run();
      const analysis::Experiment& e = pipeline.experiment();
      const std::string label =
          "shards " + std::to_string(shards) + " threads " + std::to_string(threads);

      ASSERT_EQ(e.candidates.size(), ref.candidates.size()) << label;
      for (std::size_t i = 0; i < ref.candidates.size(); ++i) {
        ASSERT_EQ(e.candidates[i].asn, ref.candidates[i].asn) << label;
        EXPECT_EQ(std::bit_cast<std::uint64_t>(e.candidates[i].cell_demand_du),
                  std::bit_cast<std::uint64_t>(ref.candidates[i].cell_demand_du))
            << label << " asn " << ref.candidates[i].asn;
        EXPECT_EQ(std::bit_cast<std::uint64_t>(e.candidates[i].total_demand_du),
                  std::bit_cast<std::uint64_t>(ref.candidates[i].total_demand_du))
            << label << " asn " << ref.candidates[i].asn;
        EXPECT_EQ(e.candidates[i].cellular_blocks, ref.candidates[i].cellular_blocks)
            << label << " asn " << ref.candidates[i].asn;
      }
      EXPECT_EQ(KeptAsns(e), KeptAsns(ref)) << label;

      // Sharding lives inside the aggregate stage; the stage list stays
      // the pinned five.
      std::vector<std::string> stages;
      for (const analysis::StageTiming& t : pipeline.timings()) stages.push_back(t.stage);
      EXPECT_EQ(stages,
                (std::vector<std::string>{"build_world", "generate_datasets", "classify",
                                          "aggregate", "filter"}))
          << label;
    }
  }
}

/// Every figure writer that depends only on the experiment, in one
/// stream: any unordered iteration in the report/export layer would
/// show up as a byte diff between thread counts.
std::string FigureCsvBundle(const analysis::Experiment& e) {
  std::ostringstream out;
  analysis::WriteFig2Csv(e, out);
  analysis::WriteFig4Csv(e, out);
  analysis::WriteFig5Csv(e, out);
  analysis::WriteFig6Csv(e, out);
  analysis::WriteFig7Csv(e, out);
  analysis::WriteFig8Csv(e, out);
  analysis::WriteCountryCsv(e, out);
  return out.str();
}

TEST(PipelineDeterminism, ReportsExportsAndChurnAreThreadCountInvariant) {
  exec::Executor ex1(1);
  analysis::Pipeline reference(TestConfig(), ex1);
  reference.Run();
  const analysis::Experiment& ref = reference.experiment();

  exec::Executor ex8(8);
  analysis::Pipeline pipeline(TestConfig(), ex8);
  pipeline.Run();
  const analysis::Experiment& e = pipeline.experiment();

  // Report layer: ranked-AS and per-country tables must match field by
  // field, in the same row order (reports.cpp iterates StableMaps).
  const auto ref_rank = analysis::RankAsesByCellDemand(ref);
  const auto rank = analysis::RankAsesByCellDemand(e);
  ASSERT_EQ(rank.size(), ref_rank.size());
  for (std::size_t i = 0; i < rank.size(); ++i) {
    EXPECT_EQ(rank[i].asn, ref_rank[i].asn) << "rank " << i;
    EXPECT_EQ(rank[i].country_iso, ref_rank[i].country_iso);
    EXPECT_EQ(rank[i].cell_demand_du, ref_rank[i].cell_demand_du);
    EXPECT_EQ(rank[i].share_of_global_cell, ref_rank[i].share_of_global_cell);
  }
  const auto ref_country = analysis::CountryDemandReport(ref);
  const auto country = analysis::CountryDemandReport(e);
  ASSERT_EQ(country.size(), ref_country.size());
  for (std::size_t i = 0; i < country.size(); ++i) {
    EXPECT_EQ(country[i].iso, ref_country[i].iso) << "row " << i;
    EXPECT_EQ(country[i].cell_du, ref_country[i].cell_du);
    EXPECT_EQ(country[i].total_du, ref_country[i].total_du);
  }

  // Export layer: the figure CSVs are byte-identical.
  EXPECT_EQ(FigureCsvBundle(e), FigureCsvBundle(ref));

  // Evolution layer: churn simulations seeded from worlds built at
  // different thread counts stay in lockstep (churn.cpp's pass-2
  // demand reallocation iterates StableMaps).
  evolution::TemporalSimulator sim_ref(ref.world);
  evolution::TemporalSimulator sim(e.world);
  for (int m = 0; m < 3; ++m) {
    sim_ref.AdvanceMonth();
    sim.AdvanceMonth();
  }
  EXPECT_EQ(sim.CellularDemand(), sim_ref.CellularDemand());
  EXPECT_EQ(sim.FixedDemand(), sim_ref.FixedDemand());
  std::ostringstream demand_ref, demand_run;
  sim_ref.GenerateDemand().SaveCsv(demand_ref);
  sim.GenerateDemand().SaveCsv(demand_run);
  EXPECT_EQ(demand_run.str(), demand_ref.str());
}

TEST(PipelineDeterminism, MatchesRunExperimentWrapper) {
  const analysis::Experiment direct = analysis::RunExperiment(TestConfig().world);

  exec::Executor ex(2);
  analysis::Pipeline pipeline(TestConfig(), ex);
  pipeline.Run();
  const analysis::Experiment& staged = pipeline.experiment();

  EXPECT_EQ(BeaconCsv(staged), BeaconCsv(direct));
  EXPECT_EQ(staged.classified.cellular(), direct.classified.cellular());
  EXPECT_EQ(KeptAsns(staged), KeptAsns(direct));
}

TEST(PipelineStages, RunOnDemandAndRecordTimings) {
  analysis::Pipeline pipeline(TestConfig());
  // Asking for the last stage pulls in all five prerequisites, once each.
  pipeline.Filter();
  std::vector<std::string> stages;
  for (const analysis::StageTiming& t : pipeline.timings()) {
    stages.push_back(t.stage);
    EXPECT_GE(t.wall_ms, 0.0);
    EXPECT_GT(t.items, 0u) << t.stage;
  }
  EXPECT_EQ(stages,
            (std::vector<std::string>{"build_world", "generate_datasets", "classify",
                                      "aggregate", "filter"}));

  // Re-running a cached stage is a no-op: no new timing entries.
  pipeline.Filter();
  pipeline.Classify();
  EXPECT_EQ(pipeline.timings().size(), 5u);
}

TEST(PipelineStages, SetClassifierInvalidatesDownstreamOnly) {
  analysis::Pipeline pipeline(TestConfig());
  pipeline.Run();
  const std::size_t baseline_cellular = pipeline.experiment().classified.cellular().size();

  // A maximally strict classifier: no block has this much evidence.
  pipeline.set_classifier({.threshold = 1.0, .min_netinfo_hits = 1000000000});
  EXPECT_EQ(pipeline.timings().size(), 5u);  // nothing re-ran yet
  pipeline.Run();
  EXPECT_EQ(pipeline.experiment().classified.cellular().size(), 0u);
  EXPECT_TRUE(pipeline.experiment().filtered.kept.empty());
  // World + datasets were kept: only classify/aggregate/filter re-ran.
  EXPECT_EQ(pipeline.timings().size(), 8u);

  // Restoring the default reproduces the original classification.
  pipeline.set_classifier({});
  pipeline.Run();
  EXPECT_EQ(pipeline.experiment().classified.cellular().size(), baseline_cellular);
}

TEST(PipelineStages, SetFiltersInvalidatesOnlyFilter) {
  analysis::Pipeline pipeline(TestConfig());
  pipeline.Run();
  const std::size_t candidates = pipeline.experiment().candidates.size();
  ASSERT_GT(candidates, 0u);

  core::AsFilterConfig none;
  none.min_cell_demand_du = 0.0;
  none.min_beacon_hits = 0;
  none.require_transit_access_class = false;
  pipeline.set_filters(none);
  pipeline.Run();
  // With every rule disabled the kept set is exactly the candidate set.
  EXPECT_EQ(pipeline.experiment().filtered.kept.size(), candidates);
  EXPECT_EQ(pipeline.timings().size(), 6u);  // only filter re-ran
}

TEST(PaperScale, EnvOverridesAndRejectsGarbage) {
  ::unsetenv("CELLSPOT_SCALE");
  EXPECT_EQ(analysis::PaperScaleFromEnv(0.05), 0.05);

  ::setenv("CELLSPOT_SCALE", "0.02", 1);
  EXPECT_EQ(analysis::PaperScaleFromEnv(0.05), 0.02);

  for (const char* bad : {"abc", "0", "-1", "0x5"}) {
    ::setenv("CELLSPOT_SCALE", bad, 1);
    EXPECT_THROW((void)analysis::PaperScaleFromEnv(0.05), std::invalid_argument)
        << "value '" << bad << "'";
  }
  ::unsetenv("CELLSPOT_SCALE");
}

}  // namespace
}  // namespace cellspot
