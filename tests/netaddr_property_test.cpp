// Property tests over randomly generated addresses and prefixes,
// parameterised by RNG seed. The trie is additionally checked against a
// brute-force reference model.
#include <gtest/gtest.h>

#include <vector>

#include "cellspot/netaddr/prefix_trie.hpp"
#include "cellspot/util/rng.hpp"

namespace cellspot::netaddr {
namespace {

IpAddress RandomAddress(util::Rng& rng, bool v6) {
  if (!v6) {
    return IpAddress::V4(static_cast<std::uint32_t>(rng.UniformInt(0, 0xFFFFFFFFULL)));
  }
  std::array<std::uint8_t, 16> bytes{};
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  return IpAddress::V6(bytes);
}

class NetaddrProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetaddrProperty, AddressTextRoundTrip) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const IpAddress addr = RandomAddress(rng, rng.Chance(0.5));
    const IpAddress parsed = IpAddress::Parse(addr.ToString());
    EXPECT_EQ(parsed, addr) << addr.ToString();
  }
}

TEST_P(NetaddrProperty, PrefixCanonicalAndTextRoundTrip) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const bool v6 = rng.Chance(0.5);
    const IpAddress addr = RandomAddress(rng, v6);
    const int length = static_cast<int>(rng.UniformInt(0, v6 ? 128 : 32));
    const Prefix p(addr, length);
    // Canonical: rebuilding from the stored address is a fixed point.
    EXPECT_EQ(Prefix(p.address(), p.length()), p);
    // The base address is inside its own prefix.
    EXPECT_TRUE(p.Contains(p.address()));
    // Text round trip.
    EXPECT_EQ(Prefix::Parse(p.ToString()), p);
    // Host bits beyond the length are zero.
    for (int bit = length; bit < p.address().bit_width(); ++bit) {
      EXPECT_FALSE(p.address().GetBit(bit));
    }
  }
}

TEST_P(NetaddrProperty, CoversIsPartialOrder) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const IpAddress addr = RandomAddress(rng, rng.Chance(0.3));
    const int width = addr.bit_width();
    const int len_a = static_cast<int>(rng.UniformInt(0, static_cast<std::uint64_t>(width)));
    const int len_b = static_cast<int>(rng.UniformInt(0, static_cast<std::uint64_t>(width)));
    const Prefix a(addr, len_a);
    const Prefix b(addr, len_b);
    // Same base address: the shorter prefix covers the longer.
    EXPECT_EQ(a.Covers(b), len_a <= len_b);
    EXPECT_TRUE(a.Covers(a));
  }
}

TEST_P(NetaddrProperty, BlockEnumerationIsBijective) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const bool v6 = rng.Chance(0.5);
    const int block_bits = v6 ? kIpv6BlockBits : kIpv4BlockBits;
    const int length = block_bits - static_cast<int>(rng.UniformInt(0, 6));
    const Prefix parent(RandomAddress(rng, v6), length);
    const std::uint64_t count = BlockCount(parent);
    const std::uint64_t probe = rng.UniformInt(0, count - 1);
    const Prefix block = NthBlock(parent, probe);
    EXPECT_TRUE(parent.Covers(block));
    EXPECT_TRUE(IsBlock(block));
    // The i-th block's address, mapped back via BlockOf, is itself.
    EXPECT_EQ(BlockOf(block.address()), block);
    // Distinct indices give distinct blocks.
    if (count > 1) {
      const std::uint64_t other = (probe + 1) % count;
      EXPECT_NE(NthBlock(parent, other), block);
    }
  }
}

TEST_P(NetaddrProperty, TrieMatchesBruteForceReference) {
  util::Rng rng(GetParam());
  PrefixTrie<int> trie;
  std::vector<std::pair<Prefix, int>> reference;

  for (int i = 0; i < 300; ++i) {
    const bool v6 = rng.Chance(0.3);
    const IpAddress addr = RandomAddress(rng, v6);
    const int max_len = v6 ? 64 : 28;
    const int length = static_cast<int>(rng.UniformInt(4, static_cast<std::uint64_t>(max_len)));
    const Prefix p(addr, length);
    const int value = static_cast<int>(rng.UniformInt(0, 1 << 20));
    trie.Insert(p, value);
    // Reference keeps the most recent value per prefix.
    bool replaced = false;
    for (auto& [rp, rv] : reference) {
      if (rp == p) {
        rv = value;
        replaced = true;
      }
    }
    if (!replaced) reference.emplace_back(p, value);
  }
  EXPECT_EQ(trie.size(), reference.size());

  for (int i = 0; i < 500; ++i) {
    const bool v6 = rng.Chance(0.3);
    const IpAddress probe = RandomAddress(rng, v6);
    // Brute force: longest covering prefix wins.
    const int* expected = nullptr;
    int best_len = -1;
    for (const auto& [rp, rv] : reference) {
      if (rp.Contains(probe) && rp.length() > best_len) {
        best_len = rp.length();
        expected = &rv;
      }
    }
    const int* actual = trie.LongestMatch(probe);
    if (expected == nullptr) {
      EXPECT_EQ(actual, nullptr);
    } else {
      ASSERT_NE(actual, nullptr);
      EXPECT_EQ(*actual, *expected);
    }
  }

  // Exact lookups agree with the reference for every stored prefix.
  for (const auto& [rp, rv] : reference) {
    const int* found = trie.Exact(rp);
    ASSERT_NE(found, nullptr) << rp.ToString();
    EXPECT_EQ(*found, rv);
  }
}

TEST_P(NetaddrProperty, TrieForEachEnumeratesExactlyStoredSet) {
  util::Rng rng(GetParam() ^ 0x5EED);
  PrefixTrie<int> trie;
  std::vector<Prefix> inserted;
  for (int i = 0; i < 120; ++i) {
    const Prefix p(RandomAddress(rng, rng.Chance(0.4)),
                   static_cast<int>(rng.UniformInt(1, 40)) % 33);
    if (trie.Insert(p, i)) inserted.push_back(p);
  }
  std::size_t visited = 0;
  trie.ForEach([&](const Prefix& p, const int&) {
    ++visited;
    EXPECT_NE(trie.Exact(p), nullptr);
  });
  EXPECT_EQ(visited, trie.size());
  EXPECT_EQ(visited, inserted.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetaddrProperty,
                         ::testing::Values(1u, 42u, 20161224u, 777u, 31337u));

}  // namespace
}  // namespace cellspot::netaddr
