#include "cellspot/netaddr/prefix.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "cellspot/util/error.hpp"

namespace cellspot::netaddr {
namespace {

TEST(Prefix, CanonicalisesHostBits) {
  const Prefix p(IpAddress::Parse("203.0.113.77"), 24);
  EXPECT_EQ(p.ToString(), "203.0.113.0/24");
}

TEST(Prefix, RejectsBadLength) {
  EXPECT_THROW(Prefix(IpAddress::Parse("1.2.3.4"), 33), std::invalid_argument);
  EXPECT_THROW(Prefix(IpAddress::Parse("::1"), 129), std::invalid_argument);
  EXPECT_THROW(Prefix(IpAddress::Parse("1.2.3.4"), -1), std::invalid_argument);
}

TEST(Prefix, ParseRoundTrip) {
  const auto p = Prefix::Parse("2001:db8::/48");
  EXPECT_EQ(p.length(), 48);
  EXPECT_EQ(p.ToString(), "2001:db8::/48");
  EXPECT_THROW((void)Prefix::Parse("1.2.3.4"), cellspot::ParseError);
  EXPECT_THROW((void)Prefix::Parse("1.2.3.4/40"), cellspot::ParseError);
  EXPECT_THROW((void)Prefix::Parse("junk/24"), cellspot::ParseError);
}

TEST(Prefix, ContainsAddresses) {
  const auto p = Prefix::Parse("10.1.2.0/24");
  EXPECT_TRUE(p.Contains(IpAddress::Parse("10.1.2.0")));
  EXPECT_TRUE(p.Contains(IpAddress::Parse("10.1.2.255")));
  EXPECT_FALSE(p.Contains(IpAddress::Parse("10.1.3.0")));
  EXPECT_FALSE(p.Contains(IpAddress::Parse("2001:db8::1")));
}

TEST(Prefix, ZeroLengthContainsFamily) {
  const Prefix v4_default;
  EXPECT_TRUE(v4_default.Contains(IpAddress::Parse("8.8.8.8")));
  EXPECT_FALSE(v4_default.Contains(IpAddress::Parse("::1")));
}

TEST(Prefix, CoversHierarchy) {
  const auto p16 = Prefix::Parse("10.1.0.0/16");
  const auto p24 = Prefix::Parse("10.1.2.0/24");
  EXPECT_TRUE(p16.Covers(p24));
  EXPECT_FALSE(p24.Covers(p16));
  EXPECT_TRUE(p16.Covers(p16));
  EXPECT_FALSE(p16.Covers(Prefix::Parse("10.2.0.0/24")));
}

TEST(BlockOf, PerFamilyGranularity) {
  EXPECT_EQ(BlockOf(IpAddress::Parse("198.51.100.200")).ToString(), "198.51.100.0/24");
  EXPECT_EQ(BlockOf(IpAddress::Parse("2001:db8:1:2::5")).ToString(), "2001:db8:1::/48");
}

TEST(BlockBits, Constants) {
  EXPECT_EQ(BlockBits(Family::kIpv4), 24);
  EXPECT_EQ(BlockBits(Family::kIpv6), 48);
}

TEST(IsBlock, OnlyExactGranularity) {
  EXPECT_TRUE(IsBlock(Prefix::Parse("10.0.0.0/24")));
  EXPECT_FALSE(IsBlock(Prefix::Parse("10.0.0.0/25")));
  EXPECT_TRUE(IsBlock(Prefix::Parse("2001:db8::/48")));
  EXPECT_FALSE(IsBlock(Prefix::Parse("2001:db8::/32")));
}

TEST(BlockCount, CountsSubBlocks) {
  EXPECT_EQ(BlockCount(Prefix::Parse("10.0.0.0/24")), 1u);
  EXPECT_EQ(BlockCount(Prefix::Parse("10.0.0.0/20")), 16u);
  EXPECT_EQ(BlockCount(Prefix::Parse("2001:db8::/44")), 16u);
  EXPECT_THROW((void)BlockCount(Prefix::Parse("10.0.0.0/25")), std::invalid_argument);
}

TEST(NthBlock, EnumeratesInOrder) {
  const auto p = Prefix::Parse("10.0.0.0/22");
  EXPECT_EQ(NthBlock(p, 0).ToString(), "10.0.0.0/24");
  EXPECT_EQ(NthBlock(p, 1).ToString(), "10.0.1.0/24");
  EXPECT_EQ(NthBlock(p, 3).ToString(), "10.0.3.0/24");
  EXPECT_THROW((void)NthBlock(p, 4), std::out_of_range);
}

TEST(NthBlock, Ipv6) {
  const auto p = Prefix::Parse("2001:db8::/46");
  EXPECT_EQ(NthBlock(p, 0).ToString(), "2001:db8::/48");
  EXPECT_EQ(NthBlock(p, 3).ToString(), "2001:db8:3::/48");
}

TEST(NthAddress, WithinV4Block) {
  const auto b = Prefix::Parse("203.0.113.0/24");
  EXPECT_EQ(NthAddress(b, 0).ToString(), "203.0.113.0");
  EXPECT_EQ(NthAddress(b, 7).ToString(), "203.0.113.7");
  EXPECT_EQ(NthAddress(b, 255).ToString(), "203.0.113.255");
  EXPECT_THROW((void)NthAddress(b, 256), std::out_of_range);
}

TEST(NthAddress, WithinV6Block) {
  const auto b = Prefix::Parse("2001:db8:5::/48");
  EXPECT_EQ(NthAddress(b, 1).ToString(), "2001:db8:5::1");
  EXPECT_EQ(NthAddress(b, 0x10).ToString(), "2001:db8:5::10");
}

TEST(Prefix, HashDistinguishesLength) {
  std::unordered_set<Prefix> set;
  set.insert(Prefix::Parse("10.0.0.0/24"));
  set.insert(Prefix::Parse("10.0.0.0/16"));
  set.insert(Prefix::Parse("10.0.0.0/24"));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace cellspot::netaddr
