// MetricsRegistry contract tests: handle stability across ResetForTest,
// find-or-create under concurrent registration, counter/latency updates
// from inside executor workers (the TSan variant runs this binary with
// CELLSPOT_THREADS=8, see tools/ci.sh), and the snapshot JSON round
// trip.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "cellspot/exec/executor.hpp"
#include "cellspot/obs/json.hpp"
#include "cellspot/obs/metrics.hpp"

namespace cellspot {
namespace {

using obs::MetricsRegistry;
using obs::MetricsSnapshot;

TEST(Counter, IncrementAndDelta) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  obs::Gauge g;
  g.Set(1.5);
  g.Add(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(LatencyHistogram, RecordsIntoPowerOfTwoBuckets) {
  obs::LatencyHistogram h;
  h.Record(0.0001);  // < 1µs -> bucket 0
  h.Record(0.003);   // 3µs -> [2, 4) = bucket 2
  h.Record(1.0);     // 1000µs -> [512, 1024) = bucket 10
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
  EXPECT_GT(h.max_ms(), h.min_ms());
  // The interpolated median must land inside the recorded range.
  const double p50 = h.ApproxQuantileMs(0.5);
  EXPECT_GE(p50, h.min_ms());
  EXPECT_LE(p50, h.max_ms());
}

TEST(LatencyHistogram, EmptyQuantilesAreZero) {
  const obs::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.ApproxQuantileMs(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.min_ms(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_ms(), 0.0);
}

TEST(MetricsRegistry, FindOrCreateReturnsSameHandle) {
  MetricsRegistry reg;
  obs::Counter& a = reg.counter("test.counter");
  obs::Counter& b = reg.counter("test.counter");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&reg.counter("test.other"), &a);
}

TEST(MetricsRegistry, ResetForTestKeepsHandlesValid) {
  MetricsRegistry reg;
  obs::Counter& c = reg.counter("test.counter");
  obs::Gauge& g = reg.gauge("test.gauge");
  obs::LatencyHistogram& h = reg.latency("test.latency");
  c.Increment(7);
  g.Set(3.5);
  h.Record(1.0);
  reg.RecordSpan("test.span", 0, 2.0, 10);

  reg.ResetForTest();

  // The same references still work after the reset — this is what lets
  // hot code cache `static Counter&` across test cases.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  c.Increment();
  EXPECT_EQ(reg.counter("test.counter").value(), 1u);
  EXPECT_TRUE(reg.Snapshot().spans.empty());
}

TEST(MetricsRegistry, SnapshotRowsAreSortedByName) {
  MetricsRegistry reg;
  reg.counter("test.zebra").Increment();
  reg.counter("test.alpha").Increment();
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "test.alpha");
  EXPECT_EQ(snap.counters[1].name, "test.zebra");
}

TEST(MetricsRegistry, ConcurrentFindOrCreateIsSingleInstance) {
  // Hammer the registration path for the same names from many raw
  // threads; every thread must resolve to the same node.
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kNames = 4;
  std::vector<obs::Counter*> seen(static_cast<std::size_t>(kThreads) * kNames);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      for (int n = 0; n < kNames; ++n) {
        obs::Counter& c = reg.counter("race.name" + std::to_string(n));
        c.Increment();
        seen[static_cast<std::size_t>(t) * kNames + n] = &c;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int n = 0; n < kNames; ++n) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t) * kNames + n], seen[n]);
    }
    EXPECT_EQ(seen[n]->value(), static_cast<std::uint64_t>(kThreads));
  }
}

TEST(MetricsRegistry, UpdatesFromExecutorWorkersAreExact) {
  // Counters updated from inside ParallelFor bodies must account for
  // every element exactly once, at any thread count (the TSan run forces
  // CELLSPOT_THREADS=8 so the relaxed-atomic path actually interleaves).
  MetricsRegistry reg;
  obs::Counter& elements = reg.counter("workers.elements");
  obs::LatencyHistogram& lat = reg.latency("workers.chunk_ms");
  constexpr std::size_t kN = 100000;
  exec::Executor::Shared().ParallelFor(kN, 64, [&](std::size_t begin, std::size_t end) {
    elements.Increment(end - begin);
    lat.Record(0.001 * static_cast<double>(end - begin));
  });
  EXPECT_EQ(elements.value(), kN);
  EXPECT_EQ(lat.count(), (kN + 63) / 64);
}

TEST(MetricsSnapshot, JsonRoundTripIsLossless) {
  MetricsRegistry reg;
  reg.counter("rt.counter").Increment(123);
  reg.gauge("rt.gauge").Set(0.25);
  reg.latency("rt.latency").Record(1.5);
  reg.RecordSpan("rt.outer", 0, 5.0, 100);
  reg.RecordSpan("rt.outer/rt.inner", 1, 2.0, 40);

  const MetricsSnapshot snap = reg.Snapshot();
  const std::string json = obs::MetricsSnapshotJson(snap);
  const MetricsSnapshot parsed = obs::MetricsSnapshotFromJson(json);
  EXPECT_EQ(parsed, snap);
  // And the serialized form is stable under a second round trip.
  EXPECT_EQ(obs::MetricsSnapshotJson(parsed), json);
}

TEST(MetricsSnapshot, FromJsonRejectsWrongSchema) {
  EXPECT_THROW((void)obs::MetricsSnapshotFromJson(R"({"schema":"bogus/9"})"),
               std::invalid_argument);
  EXPECT_THROW((void)obs::MetricsSnapshotFromJson("not json"), std::invalid_argument);
}

TEST(MetricsRegistry, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace cellspot
