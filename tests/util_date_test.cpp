#include "cellspot/util/date.hpp"

#include <gtest/gtest.h>

namespace cellspot::util {
namespace {

TEST(YearMonth, Ordering) {
  EXPECT_LT((YearMonth{2015, 9}), (YearMonth{2016, 12}));
  EXPECT_LT((YearMonth{2016, 11}), (YearMonth{2016, 12}));
  EXPECT_EQ((YearMonth{2016, 12}), (YearMonth{2016, 12}));
}

TEST(YearMonth, PlusWrapsYears) {
  const YearMonth start{2015, 9};
  EXPECT_EQ(start.Plus(3), (YearMonth{2015, 12}));
  EXPECT_EQ(start.Plus(4), (YearMonth{2016, 1}));
  EXPECT_EQ(start.Plus(21), (YearMonth{2017, 6}));
  EXPECT_EQ(start.Plus(0), start);
}

TEST(YearMonth, PlusNegative) {
  const YearMonth start{2016, 1};
  EXPECT_EQ(start.Plus(-1), (YearMonth{2015, 12}));
  EXPECT_EQ(start.Plus(-13), (YearMonth{2014, 12}));
}

TEST(YearMonth, MonthsBetween) {
  EXPECT_EQ(MonthsBetween({2015, 9}, {2017, 6}), 21);
  EXPECT_EQ(MonthsBetween({2016, 12}, {2016, 12}), 0);
  EXPECT_EQ(MonthsBetween({2017, 1}, {2016, 12}), -1);
}

TEST(YearMonth, ToStringPadsMonth) {
  EXPECT_EQ((YearMonth{2016, 3}).ToString(), "2016-03");
  EXPECT_EQ((YearMonth{2016, 12}).ToString(), "2016-12");
}

TEST(StudyWindows, PaperConstants) {
  // BEACON: Dec 1-31 = 31 days; DEMAND: Dec 24-31 = 8 days starting day 23.
  EXPECT_EQ(kBeaconWindowDays, 31);
  EXPECT_EQ(kDemandWindowFirstDay + kDemandWindowDays, kBeaconWindowDays);
}

}  // namespace
}  // namespace cellspot::util
