// Quickstart: build a small synthetic world, run the full Cell-Spotting
// pipeline on it, and print the headline numbers.
//
//   $ ./quickstart [scale]
//
// The pipeline steps mirror the paper: generate BEACON + DEMAND datasets
// from the CDN vantage point, compute per-block cellular ratios, classify
// blocks with the 0.5 threshold, aggregate per AS and apply the three
// filter heuristics.
#include <cstdio>
#include <cstdlib>

#include "cellspot/analysis/experiment.hpp"
#include "cellspot/analysis/reports.hpp"
#include "cellspot/util/strings.hpp"

using namespace cellspot;

int main(int argc, char** argv) {
  double scale = 0.01;
  if (argc > 1) {
    if (const auto parsed = util::ParseDouble(argv[1]); parsed && *parsed > 0.0) {
      scale = *parsed;
    } else {
      std::fprintf(stderr, "usage: %s [scale>0]\n", argv[0]);
      return 1;
    }
  }

  std::printf("Generating world at scale %.3g...\n", scale);
  const analysis::Experiment exp =
      analysis::RunExperiment(simnet::WorldConfig::Paper(scale));

  std::printf("  %zu announced blocks across %zu ASes\n",
              exp.world.subnets().size(), exp.world.operators().size());
  std::printf("  BEACON: %zu blocks, %s hits (%s API-enabled)\n",
              exp.beacons.block_count(),
              util::FormatWithCommas(exp.beacons.total_hits()).c_str(),
              util::FormatWithCommas(exp.beacons.total_netinfo_hits()).c_str());
  std::printf("  DEMAND: %zu blocks, normalised to %.0f DU\n\n",
              exp.demand.block_count(), exp.demand.total());

  std::printf("Cellular subnets detected: %zu /24s and %zu /48s\n",
              exp.classified.cellular_count(netaddr::Family::kIpv4),
              exp.classified.cellular_count(netaddr::Family::kIpv6));
  std::printf("Candidate cellular ASes:   %zu -> %zu after the three filters\n",
              exp.filtered.input_count, exp.filtered.kept.size());

  const auto mixed = analysis::MixedOperatorReport(exp);
  std::printf("Mixed vs dedicated:        %zu mixed / %zu dedicated\n",
              mixed.mixed_count, mixed.dedicated_count);

  double cell = 0.0;
  double total = 0.0;
  for (const auto& cd : analysis::CountryDemandReport(exp)) {
    if (cd.excluded) continue;
    cell += cd.cell_du;
    total += cd.total_du;
  }
  std::printf("Global cellular demand:    %s of all traffic\n",
              util::FormatPercent(cell / total, 1).c_str());

  std::printf("\nTop five cellular ASes by demand:\n");
  const auto ranked = analysis::RankAsesByCellDemand(exp);
  for (std::size_t i = 0; i < 5 && i < ranked.size(); ++i) {
    const auto* record = exp.world.as_db().Find(ranked[i].asn);
    std::printf("  %zu. %-18s %-4s %6s of global cellular %s\n", i + 1,
                record != nullptr ? record->name.c_str() : "?",
                ranked[i].country_iso.c_str(),
                util::FormatPercent(ranked[i].share_of_global_cell, 1).c_str(),
                ranked[i].mixed ? "(mixed)" : "(dedicated)");
  }
  return 0;
}
