// Scenario: a network service replicating the paper's method on its own
// RUM logs (§2: "our approach is easily replicated by individual network
// services for analysis across their own clients").
//
// The example writes a raw beacon log to disk (one CSV line per page
// load), then runs the consumer side exactly as a third party would:
// parse the log, aggregate per /24 and /48, compute cellular ratios,
// classify with the 0.5 threshold, and print the detected subnets.
//
//   $ ./classify_beacon_log [log-path]
#include <cstdio>
#include <fstream>
#include <map>

#include "cellspot/cdn/beacon_generator.hpp"
#include "cellspot/cdn/beacon_log.hpp"
#include "cellspot/core/classifier.hpp"
#include "cellspot/simnet/world.hpp"

using namespace cellspot;

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "beacon_sample.log";

  // --- producer side: a month of RUM beacon hits --------------------------
  const simnet::World world = simnet::World::Generate(simnet::WorldConfig::Tiny());
  const cdn::BeaconGenerator generator(world);
  std::uint64_t written = 0;
  {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    written = generator.StreamHits(
        [&](const netaddr::Prefix&, const cdn::BeaconHit& hit) {
          out << cdn::FormatBeaconLogLine(hit) << '\n';
        },
        200000);
  }
  std::printf("wrote %llu beacon hits to %s\n",
              static_cast<unsigned long long>(written), path);

  // --- consumer side: parse, aggregate, classify --------------------------
  std::ifstream in(path);
  const dataset::BeaconDataset beacons = cdn::AggregateBeaconLog(in);
  std::printf("aggregated %zu blocks (%llu hits, %llu with Network Information)\n",
              beacons.block_count(),
              static_cast<unsigned long long>(beacons.total_hits()),
              static_cast<unsigned long long>(beacons.total_netinfo_hits()));

  const core::SubnetClassifier classifier;  // threshold 0.5, as in §4.2
  const core::ClassifiedSubnets classified = classifier.Classify(beacons);

  std::printf("\ndetected cellular subnets: %zu\n", classified.cellular().size());
  std::printf("%-20s %-8s %-10s %s\n", "block", "ratio", "api-hits", "truth");
  std::map<std::string, const netaddr::Prefix*> sorted;
  for (const netaddr::Prefix& block : classified.cellular()) {
    sorted.emplace(block.ToString(), &block);
  }
  int shown = 0;
  for (const auto& [text, block] : sorted) {
    if (++shown > 15) {
      std::printf("  ... and %zu more\n", classified.cellular().size() - 15);
      break;
    }
    const auto* stats = beacons.Find(*block);
    const simnet::Subnet* truth = world.FindSubnet(*block);
    std::printf("%-20s %-8.3f %-10llu %s\n", text.c_str(),
                stats != nullptr ? stats->CellularRatio() : 0.0,
                stats != nullptr
                    ? static_cast<unsigned long long>(stats->netinfo_hits)
                    : 0ULL,
                truth == nullptr            ? "(unknown)"
                : truth->truth_cellular     ? "cellular"
                : truth->proxy_terminating  ? "proxy (expected FP)"
                                            : "fixed (FP)");
  }
  return 0;
}
