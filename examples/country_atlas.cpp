// Scenario: the policy-maker view of §7 — a country-by-country atlas of
// how much Internet traffic rides cellular access, highlighting markets
// where cellular is already the primary connectivity (Laos, Ghana,
// Indonesia in the paper).
//
//   $ ./country_atlas [min-demand-du]
#include <algorithm>
#include <cstdio>

#include "cellspot/analysis/experiment.hpp"
#include "cellspot/analysis/reports.hpp"
#include "cellspot/util/strings.hpp"
#include "cellspot/util/table.hpp"

using namespace cellspot;

int main(int argc, char** argv) {
  double min_demand = 20.0;
  if (argc > 1) {
    if (const auto parsed = util::ParseDouble(argv[1]); parsed && *parsed >= 0.0) {
      min_demand = *parsed;
    }
  }

  const analysis::Experiment exp =
      analysis::RunExperiment(simnet::WorldConfig::Paper(0.01));
  auto countries = analysis::CountryDemandReport(exp);
  std::erase_if(countries, [&](const analysis::CountryDemand& cd) {
    return cd.excluded || cd.total_du < min_demand;
  });
  std::sort(countries.begin(), countries.end(),
            [](const auto& a, const auto& b) {
              return a.CellFraction() > b.CellFraction();
            });

  util::TextTable t({"Country", "Continent", "Total DU", "Cellular DU",
                     "Cellular share", "Reliance"});
  for (const auto& cd : countries) {
    const double frac = cd.CellFraction();
    const char* reliance = frac > 0.6   ? "cellular-primary"
                           : frac > 0.3 ? "cellular-heavy"
                           : frac > 0.15 ? "balanced"
                                          : "fixed-line-primary";
    t.AddRow({cd.iso, std::string(geo::ContinentCode(cd.continent)),
              util::FormatDouble(cd.total_du, 1),
              util::FormatDouble(cd.cell_du, 1),
              util::FormatPercent(frac, 1), reliance});
  }
  std::printf("%s", t.RenderWithTitle("Cellular reliance by country (min demand " +
                                      util::FormatDouble(min_demand, 1) + " DU)")
                        .c_str());

  std::size_t primary = 0;
  for (const auto& cd : countries) {
    if (cd.CellFraction() > 0.6) ++primary;
  }
  std::printf("\n%zu of %zu countries rely on cellular for the majority of their\n"
              "traffic — for them, cellular networks are critical infrastructure\n"
              "(the paper's Finding 3, §7.3).\n",
              primary, countries.size());
  return 0;
}
