// Scenario: a CDN operations engineer drilling into one access network —
// the §6 workflow. For a chosen AS the report shows: mixed/dedicated
// classification from the cellular fraction of demand, the CGNAT demand
// concentration across its /24s (Fig 8), the per-block ratio breakdown
// (Fig 6), its DNS resolver sharing (Fig 9) and validation against the
// operator's own ground-truth list (Table 3).
//
//   $ ./operator_report [asn]    (default: the world's Carrier A)
#include <cstdio>
#include <cstdlib>

#include "cellspot/analysis/experiment.hpp"
#include "cellspot/analysis/reports.hpp"
#include "cellspot/core/validation.hpp"
#include "cellspot/dns/dns_simulator.hpp"
#include "cellspot/util/strings.hpp"

using namespace cellspot;

int main(int argc, char** argv) {
  const analysis::Experiment exp =
      analysis::RunExperiment(simnet::WorldConfig::Paper(0.01));

  asdb::AsNumber asn = 0;
  if (argc > 1) {
    if (const auto parsed = util::ParseUint(argv[1])) {
      asn = static_cast<asdb::AsNumber>(*parsed);
    }
  }
  const simnet::OperatorInfo* op =
      asn != 0 ? exp.world.FindOperator(asn) : analysis::FindCarrier(exp, 'A');
  if (op == nullptr) {
    std::fprintf(stderr, "AS%u not found in this world\n", asn);
    std::fprintf(stderr, "known ASes: ");
    for (std::size_t i = 0; i < 10 && i < exp.world.operators().size(); ++i) {
      std::fprintf(stderr, "%u ", exp.world.operators()[i].asn);
    }
    std::fprintf(stderr, "...\n");
    return 1;
  }
  const asdb::AsRecord* record = exp.world.as_db().Find(op->asn);

  std::printf("===== Operator report: %s (AS%u, %s) =====\n",
              record != nullptr ? record->name.c_str() : "?", op->asn,
              op->country_iso.c_str());

  // Measured profile from the pipeline's kept/candidate sets.
  const core::AsAggregate* agg = nullptr;
  for (const core::AsAggregate& candidate : exp.candidates) {
    if (candidate.asn == op->asn) agg = &candidate;
  }
  if (agg == nullptr) {
    std::printf("no cellular subnets detected in this AS\n");
    return 0;
  }
  std::printf("\nMeasured profile:\n");
  std::printf("  cellular blocks: %zu v4 + %zu v6 (of %zu observed)\n",
              agg->cell_blocks_v4, agg->cell_blocks_v6,
              agg->observed_blocks_v4 + agg->observed_blocks_v6);
  std::printf("  cellular demand: %.2f DU of %.2f DU total => CFD %.3f => %s\n",
              agg->cell_demand_du, agg->total_demand_du, agg->Cfd(),
              core::IsDedicated(*agg) ? "DEDICATED" : "MIXED");
  std::printf("  ground truth:    %s\n",
              std::string(asdb::OperatorKindName(op->kind)).c_str());

  // Demand concentration (Fig 8).
  const auto conc = analysis::SubnetConcentrationReport(exp, op->asn);
  std::printf("\nDemand concentration:\n");
  std::printf("  %zu cellular /24s carry demand; %zu cover 99%% of it\n",
              conc.cellular_demands.size(), conc.blocks_for_99pct_cell);
  std::printf("  fixed side spreads over %zu /24s\n", conc.fixed_demands.size());

  // Ratio breakdown (Fig 6).
  const auto points = analysis::OperatorRatioBreakdown(exp, op->asn);
  std::size_t low = 0;
  std::size_t high = 0;
  for (const auto& p : points) {
    if (p.ratio < 0.1) ++low;
    if (p.ratio > 0.9) ++high;
  }
  std::printf("\nBlock ratio mix: %zu blocks < 0.1, %zu blocks > 0.9, %zu between\n",
              low, high, points.size() - low - high);

  // Resolver fleet (Fig 9).
  const dns::DnsSimulator dns_sim(exp.world);
  std::printf("\nDNS resolvers:\n");
  for (const dns::ResolverStats& r : dns_sim.ResolversOf(op->asn)) {
    std::printf("  %-16s %-14s cell %6.2f DU  fixed %6.2f DU  (%.0f%% cellular)\n",
                r.address.ToString().c_str(),
                std::string(dns::ResolverRoleName(r.role)).c_str(), r.cell_du,
                r.fixed_du, 100.0 * r.CellularFraction());
  }

  // Validation against the operator's own subnet list (Table 3).
  const auto truth = analysis::BuildCarrierTruth(exp.world, op->asn, "self");
  const auto v = core::Validate(truth, exp.classified, exp.demand);
  std::printf("\nValidation against the operator's subnet list:\n");
  std::printf("  by CIDR:   P=%.2f R=%.2f (tp=%.0f fp=%.0f fn=%.0f)\n",
              v.by_cidr.Precision(), v.by_cidr.Recall(), v.by_cidr.tp(),
              v.by_cidr.fp(), v.by_cidr.fn());
  std::printf("  by demand: P=%.2f R=%.2f\n", v.by_demand.Precision(),
              v.by_demand.Recall());
  return 0;
}
