// Scenario: operating the cellular-address map over time (the paper's
// §8 future-work question). A CDN builds the map once, then must decide
// how often to refresh it: every month of churn, this example reports how
// much of the *current* cellular traffic the stale map still covers, and
// how large the stale map's false surface has grown (blocks it lists that
// no longer carry cellular traffic).
//
//   $ ./map_maintenance [months]
#include <cstdio>
#include <unordered_set>

#include "cellspot/core/classifier.hpp"
#include "cellspot/evolution/churn.hpp"
#include "cellspot/util/strings.hpp"

using namespace cellspot;

int main(int argc, char** argv) {
  int months = 12;
  if (argc > 1) {
    if (const auto parsed = util::ParseUint(argv[1]); parsed && *parsed <= 60) {
      months = static_cast<int>(*parsed);
    }
  }

  const simnet::World world =
      simnet::World::Generate(simnet::WorldConfig::Paper(0.01));
  evolution::TemporalSimulator sim(world);
  const core::SubnetClassifier classifier;

  // Month-0 map: what the CDN deploys.
  const auto base_map = classifier.Classify(sim.GenerateBeacons()).cellular();
  std::unordered_set<netaddr::Prefix> deployed(base_map.begin(), base_map.end());
  std::printf("deployed cellular map: %zu blocks\n\n", deployed.size());
  std::printf("%-6s %-22s %-22s %-14s\n", "month", "traffic still covered",
              "stale map entries", "fresh map size");

  for (int m = 1; m <= months; ++m) {
    sim.AdvanceMonth();
    const auto beacons = sim.GenerateBeacons();
    const auto demand = sim.GenerateDemand();
    const auto fresh = classifier.Classify(beacons);

    double covered = 0.0;
    double total = 0.0;
    for (const netaddr::Prefix& block : fresh.cellular()) {
      const double du = demand.DemandOf(block);
      total += du;
      if (deployed.contains(block)) covered += du;
    }
    std::size_t stale = 0;
    for (const netaddr::Prefix& block : deployed) {
      if (!fresh.IsCellular(block)) ++stale;
    }
    std::printf("%-6d %-22s %-22s %-14zu\n", m,
                util::FormatPercent(total > 0 ? covered / total : 1.0, 1).c_str(),
                (util::FormatWithCommas(stale) + " of " +
                 util::FormatWithCommas(deployed.size()))
                    .c_str(),
                fresh.cellular().size());
  }

  std::printf("\nReading: 'traffic still covered' decays slowly (the CGNAT core is\n"
              "stable), while stale entries accumulate — refresh cadence should be\n"
              "driven by the stale-entry budget, not by covered traffic.\n");
  return 0;
}
