// Scenario: the deployed artifact. A service builds the cellular map
// once (here: from a generated world; in production: from the pipeline
// over real logs), writes it to disk, and then answers per-request
// "is this client cellular?" lookups — the content-provider use case the
// paper's introduction motivates (transport tuning, performance
// debugging, SLA management).
//
//   $ ./ip_lookup                  # demo with sampled addresses
//   $ ./ip_lookup 203.0.113.7 ...  # look up specific addresses
#include <cstdio>
#include <fstream>

#include "cellspot/analysis/experiment.hpp"
#include "cellspot/core/cellular_map.hpp"

using namespace cellspot;

int main(int argc, char** argv) {
  // Build and persist the map (the expensive, offline step).
  const analysis::Experiment exp = analysis::RunExperiment(simnet::WorldConfig::Tiny());
  const core::CellularMap map = core::CellularMap::FromClassification(exp.classified);
  {
    std::ofstream out("cellular_map.txt");
    map.Save(out);
  }
  std::printf("cellular map: %zu aggregated prefixes (from %zu detected blocks), "
              "saved to cellular_map.txt\n\n",
              map.size(), exp.classified.cellular().size());

  // Serve lookups (the cheap, online step) — from a fresh load, as a
  // deployed service would.
  std::ifstream in("cellular_map.txt");
  const core::CellularMap served = core::CellularMap::Load(in);

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      const auto addr = netaddr::IpAddress::TryParse(argv[i]);
      if (!addr) {
        std::printf("%-24s invalid address\n", argv[i]);
        continue;
      }
      std::printf("%-24s %s\n", argv[i],
                  served.Contains(*addr) ? "CELLULAR" : "not cellular");
    }
    return 0;
  }

  // Demo: sample one address from a few known-cellular and known-fixed
  // blocks and show the map agreeing with ground truth.
  std::printf("%-24s %-14s %s\n", "address", "map says", "ground truth");
  int shown_cell = 0;
  int shown_fixed = 0;
  for (const simnet::Subnet& s : exp.world.subnets()) {
    if (s.demand_du <= 0.0 || s.beacon_scale <= 0.0 || s.proxy_terminating) continue;
    if (s.truth_cellular && shown_cell >= 5) continue;
    if (!s.truth_cellular && shown_fixed >= 5) continue;
    const auto addr = netaddr::NthAddress(s.block, 77);
    std::printf("%-24s %-14s %s\n", addr.ToString().c_str(),
                served.Contains(addr) ? "CELLULAR" : "not cellular",
                s.truth_cellular ? "cellular" : "fixed");
    (s.truth_cellular ? shown_cell : shown_fixed)++;
    if (shown_cell >= 5 && shown_fixed >= 5) break;
  }
  return 0;
}
